// End-to-end protocol-portability checks at the System level (paper §4.1):
// the same traces on HMC 1.0, HMC 2.1 and HBM-row configurations.
#include <gtest/gtest.h>

#include "sim/runner.hpp"
#include "sim/system.hpp"

namespace pacsim {
namespace {

Trace burst_trace(Addr base, std::size_t bursts) {
  Trace t;
  for (std::size_t b = 0; b < bursts; ++b) {
    const Addr page = base + b * kPageSize;
    for (std::size_t i = 0; i < 32; ++i) {
      t.push_back({page + i * 64, 8, OpKind::kLoad});
      t.push_back({0, 1, OpKind::kCompute});
    }
  }
  return t;
}

SystemConfig with_protocol(const CoalescingProtocol& protocol,
                           std::uint32_t row_bytes) {
  SystemConfig cfg;
  cfg.coalescer = CoalescerKind::kPac;
  cfg.num_cores = 2;
  cfg.pac.protocol = protocol;
  cfg.hmc.map.row_bytes = row_bytes;
  return cfg;
}

TEST(SystemProtocols, WiderProtocolsIssueFewerLargerRequests) {
  const Trace t = burst_trace(0x10000000, 400);
  const std::vector<Trace> traces = {t, burst_trace(0x40000000, 400)};

  const RunResult hmc1 =
      simulate(with_protocol(CoalescingProtocol::hmc1(), 256), traces);
  const RunResult hmc2 =
      simulate(with_protocol(CoalescingProtocol::hmc2(), 256), traces);
  const RunResult hbm =
      simulate(with_protocol(CoalescingProtocol::hbm(), 1024), traces);

  // Same raw work, monotonically fewer packets as the max request grows.
  EXPECT_GT(hmc1.coal.issued_requests, hmc2.coal.issued_requests);
  EXPECT_GT(hmc2.coal.issued_requests, hbm.coal.issued_requests);
  // And monotonically better transaction efficiency.
  EXPECT_LT(hmc1.transaction_eff(), hmc2.transaction_eff());
  EXPECT_LT(hmc2.transaction_eff(), hbm.transaction_eff());
  // Size invariants per protocol.
  for (const auto& [bytes, count] : hmc1.coal.request_size_bytes.buckets()) {
    EXPECT_LE(bytes, 128);
  }
  for (const auto& [bytes, count] : hbm.coal.request_size_bytes.buckets()) {
    EXPECT_LE(bytes, 1024);
  }
}

TEST(SystemProtocols, RefreshDisabledStillCompletes) {
  SystemConfig cfg = with_protocol(CoalescingProtocol::hmc2(), 256);
  cfg.hmc.enable_refresh = false;
  const std::vector<Trace> traces = {burst_trace(0x20000000, 100)};
  const RunResult r = simulate(cfg, traces);
  EXPECT_EQ(r.hmc.refreshes, 0u);
  EXPECT_GT(r.coal.raw_requests, 0u);
}

TEST(SystemProtocols, RefreshEnabledAccountsEnergy) {
  SystemConfig cfg = with_protocol(CoalescingProtocol::hmc2(), 256);
  const std::vector<Trace> traces = {burst_trace(0x20000000, 400)};
  const RunResult r = simulate(cfg, traces);
  EXPECT_GT(r.hmc.refreshes, 0u);
  EXPECT_GT(r.energy[static_cast<std::size_t>(HmcOp::kDramRefresh)], 0.0);
}

TEST(SystemProtocols, SameSeedSameResult) {
  // Full-system determinism: identical configs and traces give bit-equal
  // headline metrics.
  WorkloadConfig wcfg;
  wcfg.num_cores = 4;
  wcfg.max_ops_per_core = 6000;
  wcfg.scale = 0.25;
  const Workload* suite = find_workload("gs");
  const RunResult a = run_suite(*suite, CoalescerKind::kPac, wcfg,
                                SystemConfig{});
  const RunResult b = run_suite(*suite, CoalescerKind::kPac, wcfg,
                                SystemConfig{});
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.coal.issued_requests, b.coal.issued_requests);
  EXPECT_EQ(a.hmc.bank_conflicts, b.hmc.bank_conflicts);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
}

TEST(SystemProtocols, SeedChangesPageLayoutNotConservation) {
  WorkloadConfig wcfg;
  wcfg.num_cores = 2;
  wcfg.max_ops_per_core = 4000;
  wcfg.scale = 0.25;
  SystemConfig cfg;
  cfg.coalescer = CoalescerKind::kPac;
  SystemConfig other = cfg;
  other.page_table_seed = 0xDEADBEEF;
  const Workload* suite = find_workload("stream");
  const std::vector<Trace> traces = suite->generate(wcfg);
  cfg.num_cores = other.num_cores = wcfg.num_cores;
  const RunResult a = simulate(cfg, traces);
  const RunResult b = simulate(other, traces);
  // Same raw demand either way; physical layout differs.
  EXPECT_EQ(a.llc_misses, b.llc_misses);
}

}  // namespace
}  // namespace pacsim
