#include "cache/prefetcher.hpp"

#include <gtest/gtest.h>

namespace pacsim {
namespace {

PrefetcherConfig cfg() {
  PrefetcherConfig c;
  c.streams_per_core = 4;
  c.degree = 8;
  c.refill_threshold = 4;
  c.train_threshold = 2;
  return c;
}

Addr blk(std::uint64_t i) { return i << kCacheBlockShift; }

TEST(Prefetcher, NoPrefetchUntilTrained) {
  StreamPrefetcher pf(1, cfg());
  EXPECT_TRUE(pf.on_miss(0, blk(10)).empty());  // allocation
  EXPECT_TRUE(pf.on_miss(0, blk(11)).empty());  // confidence 1
  EXPECT_TRUE(pf.on_miss(0, blk(12)).empty());  // confidence 2 (=threshold)
  EXPECT_FALSE(pf.on_miss(0, blk(13)).empty());
}

TEST(Prefetcher, FirstBurstCoversDegree) {
  StreamPrefetcher pf(1, cfg());
  for (std::uint64_t i = 10; i <= 12; ++i) pf.on_miss(0, blk(i));
  const auto out = pf.on_miss(0, blk(13));
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t k = 0; k < out.size(); ++k) {
    EXPECT_EQ(out[k], blk(14 + k));
  }
}

TEST(Prefetcher, BatchRefillAfterConsumption) {
  StreamPrefetcher pf(1, cfg());
  for (std::uint64_t i = 10; i <= 12; ++i) pf.on_miss(0, blk(i));
  ASSERT_EQ(pf.on_miss(0, blk(13)).size(), 8u);  // issued up to 21
  // Advancing one block: still 7 ahead (>= refill threshold 4): no refill.
  EXPECT_TRUE(pf.on_miss(0, blk(14)).empty());
  EXPECT_TRUE(pf.on_miss(0, blk(15)).empty());
  EXPECT_TRUE(pf.on_miss(0, blk(16)).empty());
  EXPECT_TRUE(pf.on_miss(0, blk(17)).empty());
  // Now only 3 remain ahead: top back up to 8 in one batch of 4-5 blocks.
  const auto refill = pf.on_miss(0, blk(18));
  ASSERT_FALSE(refill.empty());
  EXPECT_EQ(refill.front(), blk(22));
  EXPECT_EQ(refill.back(), blk(26));
}

TEST(Prefetcher, BackwardStrideSupported) {
  StreamPrefetcher pf(1, cfg());
  for (std::uint64_t i = 100; i >= 98; --i) pf.on_miss(0, blk(i));
  const auto out = pf.on_miss(0, blk(97));
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), blk(96));
}

TEST(Prefetcher, StrideTwoSupported) {
  StreamPrefetcher pf(1, cfg());
  for (std::uint64_t i = 0; i < 3; ++i) pf.on_miss(0, blk(10 + 2 * i));
  const auto out = pf.on_miss(0, blk(16));
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), blk(18));
}

TEST(Prefetcher, LargeJumpBreaksStream) {
  StreamPrefetcher pf(1, cfg());
  for (std::uint64_t i = 10; i <= 13; ++i) pf.on_miss(0, blk(i));
  EXPECT_TRUE(pf.on_miss(0, blk(500)).empty());  // new stream allocated
}

TEST(Prefetcher, IndependentStreamsPerCore) {
  StreamPrefetcher pf(2, cfg());
  for (std::uint64_t i = 10; i <= 13; ++i) pf.on_miss(0, blk(i));
  // Core 1's table is untouched; its identical pattern needs training.
  EXPECT_TRUE(pf.on_miss(1, blk(20)).empty());
  EXPECT_TRUE(pf.on_miss(1, blk(21)).empty());
}

TEST(Prefetcher, MultipleConcurrentStreamsOneCore) {
  StreamPrefetcher pf(1, cfg());
  // Interleave two unit-stride streams far apart: both must train and emit
  // their first burst on the 4th access despite the interleaving.
  std::vector<Addr> a, b;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto ea = pf.on_miss(0, blk(100 + i));
    const auto eb = pf.on_miss(0, blk(9000 + i));
    a.insert(a.end(), ea.begin(), ea.end());
    b.insert(b.end(), eb.begin(), eb.end());
  }
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(a.front(), blk(104));
  EXPECT_EQ(b.front(), blk(9004));
}

TEST(Prefetcher, IssuedCounterAccumulates) {
  StreamPrefetcher pf(1, cfg());
  for (std::uint64_t i = 10; i <= 13; ++i) pf.on_miss(0, blk(i));
  EXPECT_EQ(pf.issued(), 8u);
}

TEST(Prefetcher, NeverPrefetchesNegativeBlocks) {
  StreamPrefetcher pf(1, cfg());
  for (std::uint64_t i = 5; i >= 3; --i) pf.on_miss(0, blk(i));
  const auto out = pf.on_miss(0, blk(2));
  for (Addr a : out) EXPECT_LT(a >> kCacheBlockShift, 5u);
}

}  // namespace
}  // namespace pacsim
