// Chaos-soak fuzzer unit tests (DESIGN.md "Chaos-soak fuzzing"): sampler
// determinism and domain validity, reproducer knob round-trips, the
// fork-based case isolator's exit/signal/watchdog/stderr contracts, the
// delta-debugging minimizer on a synthetic failure predicate, and the
// differential oracle runner on a clean case and on the planted
// fast-forward-overshoot bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "fuzz/case_isolator.hpp"
#include "fuzz/config_sampler.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/oracle_runner.hpp"
#include "fuzz/soak_case.hpp"

namespace pacsim::fuzz {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& name) {
  const auto dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// ConfigSampler: determinism, order independence, and domain validity.

TEST(ConfigSampler, SameSeedSameCaseIdIsBitIdentical) {
  const ConfigSampler a(42);
  const ConfigSampler b(42);
  for (std::uint64_t id : {0ULL, 1ULL, 7ULL, 1000ULL, 123456789ULL}) {
    EXPECT_TRUE(a.sample(id) == b.sample(id)) << "id " << id;
  }
}

TEST(ConfigSampler, SamplingIsOrderIndependent) {
  const ConfigSampler s(7);
  // Draw in one order, then the reverse: case i depends only on (seed, i).
  std::vector<SoakCase> forward;
  for (std::uint64_t id = 0; id < 8; ++id) forward.push_back(s.sample(id));
  for (std::uint64_t id = 8; id-- > 0;) {
    EXPECT_TRUE(s.sample(id) == forward[id]) << "id " << id;
  }
}

TEST(ConfigSampler, DifferentSeedsOrIdsDiverge) {
  const ConfigSampler a(1);
  const ConfigSampler b(2);
  int differing = 0;
  for (std::uint64_t id = 0; id < 16; ++id) {
    if (!(a.sample(id) == b.sample(id))) ++differing;
    if (id > 0 && !(a.sample(id) == a.sample(0))) ++differing;
  }
  // With these domains a collision across all 31 comparisons is
  // astronomically unlikely; any nonzero count proves the streams differ.
  EXPECT_GT(differing, 24);
}

TEST(ConfigSampler, EverySampledCaseIsValid) {
  const KnobDomains d = KnobDomains::defaults();
  const ConfigSampler s(0xDECAF, d);
  constexpr std::uint32_t kHmcVaults = 32;
  bool saw_timeline = false;
  bool saw_multicube = false;
  for (std::uint64_t id = 0; id < 300; ++id) {
    const SoakCase c = s.sample(id);
    // Execution plan constraints.
    EXPECT_LE(c.shards, c.cores) << "id " << id;
    EXPECT_LE(c.threads, c.shards) << "id " << id;
    EXPECT_GE(c.shards, 1u);
    EXPECT_GE(c.threads, 1u);
    // Timeline constraints.
    if (!c.timeline.empty()) {
      saw_timeline = true;
      EXPECT_GE(c.cubes, 2u) << "id " << id;
      // Scheduled hardware death must not run under abort (a legal death
      // would kill the campaign's child and read as a crash).
      EXPECT_EQ(c.fail_policy, FailPolicy::kContain) << "id " << id;
      std::set<Cycle> cycles;
      for (const FaultEvent& e : c.timeline) {
        EXPECT_TRUE(cycles.insert(e.cycle).second)
            << "id " << id << ": duplicate cycle " << e.cycle;
        switch (e.kind) {
          case FaultEventKind::kLinkDown:
          case FaultEventKind::kLinkUp:
            EXPECT_LT(e.a, c.cubes) << "id " << id;
            EXPECT_EQ(e.b, e.a + 1) << "id " << id;  // adjacent pair
            EXPECT_LT(e.b, c.cubes) << "id " << id;
            break;
          case FaultEventKind::kCubeDown:
            EXPECT_LT(e.a, c.cubes) << "id " << id;
            break;
          case FaultEventKind::kVaultDown:
            // Vaults are an HMC notion.
            EXPECT_EQ(c.backend, BackendKind::kHmc) << "id " << id;
            EXPECT_LT(e.a, c.cubes) << "id " << id;
            EXPECT_LT(e.b, kHmcVaults) << "id " << id;
            break;
        }
      }
      // normalize() was applied: sorted by cycle.
      for (std::size_t i = 1; i < c.timeline.size(); ++i) {
        EXPECT_LE(c.timeline[i - 1].cycle, c.timeline[i].cycle);
      }
    }
    if (c.cubes >= 2) {
      saw_multicube = true;
    } else {
      EXPECT_EQ(c.topology, Topology::kChain);
    }
    // Sampled values come from the declared domains.
    EXPECT_NE(std::find(d.cube_counts.begin(), d.cube_counts.end(), c.cubes),
              d.cube_counts.end());
    EXPECT_NE(std::find(d.ops_values.begin(), d.ops_values.end(), c.ops),
              d.ops_values.end());
    // No perturbation plan given: sampled cases carry none.
    EXPECT_EQ(c.ff_overshoot, 0u);
    EXPECT_FALSE(c.skip_timeline_clamp);
  }
  EXPECT_TRUE(saw_timeline);
  EXPECT_TRUE(saw_multicube);
}

TEST(ConfigSampler, PerturbPlanIsStampedOnEveryCase) {
  PerturbPlan plant;
  plant.ff_overshoot = 64;
  const ConfigSampler s(3, KnobDomains::quick(), plant);
  for (std::uint64_t id = 0; id < 10; ++id) {
    EXPECT_EQ(s.sample(id).ff_overshoot, 64u);
  }
}

// ---------------------------------------------------------------------------
// Reproducer round-trip: knobs -> Cli -> case is the identity.

TEST(SoakRepro, SampledCasesRoundTripThroughKnobs) {
  const ConfigSampler s(0xBEEF);
  for (std::uint64_t id = 0; id < 50; ++id) {
    const SoakCase c = s.sample(id);
    const Cli cli(to_knobs(c));
    const SoakCase back = soak_case_from_cli(cli);
    EXPECT_TRUE(back == c) << "id " << id;
  }
}

TEST(SoakRepro, WriteAndLoadReproFileRoundTrips) {
  const std::string dir = scratch_dir("pacsim_fuzz_repro");
  fs::create_directories(dir);
  const ConfigSampler s(11, KnobDomains::defaults(),
                        PerturbPlan{/*ff_overshoot=*/64,
                                    /*skip_timeline_clamp=*/true});
  const SoakCase c = s.sample(4);
  const std::string path = dir + "/repro-case4.txt";
  write_repro(path, c, "divergence (ff-vs-naive): synthetic");
  const SoakCase back = load_repro(path);
  EXPECT_TRUE(back == c);
  // The verdict rides along as a comment, invisible to the parser.
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("# verdict: divergence"), std::string::npos);
  fs::remove_all(dir);
}

TEST(SoakRepro, FractionalDoublesSurviveTheTextFormat) {
  SoakCase c;
  c.zipf = 0.6;
  c.fault_rate = 0.002;
  c.drop_rate = 1e-9;
  const SoakCase back = soak_case_from_cli(Cli(to_knobs(c)));
  EXPECT_EQ(back.zipf, 0.6);
  EXPECT_EQ(back.fault_rate, 0.002);
  EXPECT_EQ(back.drop_rate, 1e-9);
}

TEST(CliFromFile, ParsesCommentsBlanksAndWhitespace) {
  const std::string dir = scratch_dir("pacsim_fuzz_clifile");
  fs::create_directories(dir);
  const std::string path = dir + "/knobs.txt";
  {
    std::ofstream out(path);
    out << "# header comment\n"
        << "\n"
        << "  cores=4   \n"
        << "ops=200  # trailing comment\n"
        << "\tzipf=0.6\r\n";
  }
  const Cli cli = Cli::from_file(path);
  EXPECT_EQ(cli.get_u64("cores", 0), 4u);
  EXPECT_EQ(cli.get_u64("ops", 0), 200u);
  EXPECT_EQ(cli.get_double("zipf", 0.0), 0.6);
  fs::remove_all(dir);
}

TEST(CliFromFile, MissingFileThrows) {
  EXPECT_THROW((void)Cli::from_file("/nonexistent/pacsim/knobs.txt"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Verdict text round-trip (the isolator's report-pipe wire format).

TEST(Verdict, TextRoundTripsThroughParse) {
  Verdict v;
  v.cls = SoakClass::kDivergence;
  v.oracle = "ff-vs-naive";
  v.detail = "report line 5: '\"cycles\": 3453,' vs '\"cycles\": 2887,'";
  v.oracles_checked = 3;
  v.oracles_skipped = 1;
  const Verdict back = Verdict::parse(v.text());
  EXPECT_EQ(back.cls, v.cls);
  EXPECT_EQ(back.oracle, v.oracle);
  EXPECT_EQ(back.detail, v.detail);
  EXPECT_EQ(back.oracles_checked, 3u);
  EXPECT_EQ(back.oracles_skipped, 1u);
  EXPECT_TRUE(back.failed());
}

TEST(Verdict, ParseRejectsTextWithoutClass) {
  EXPECT_THROW((void)Verdict::parse("oracle=x\ndetail=y\n"),
               std::invalid_argument);
}

TEST(Verdict, ClassNamesRoundTrip) {
  for (const SoakClass cls :
       {SoakClass::kClean, SoakClass::kDivergence, SoakClass::kViolation,
        SoakClass::kCrash, SoakClass::kHang}) {
    EXPECT_EQ(parse_soak_class(to_string(cls)), cls);
  }
  EXPECT_THROW((void)parse_soak_class("meltdown"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CaseIsolator: the fork harness's status, report, and stderr contracts.

TEST(CaseIsolator, CapturesExitCodeAndReport) {
  const CaseIsolator iso;
  const IsolateResult r = iso.run([](std::string& report) {
    report = "class=clean\noracle=\n";
    return 0;
  });
  EXPECT_EQ(r.status, IsolateResult::Status::kExited);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.report, "class=clean\noracle=\n");
}

TEST(CaseIsolator, NonzeroExitAndStderrTailSurvive) {
  IsolateLimits lim;
  lim.stderr_tail_bytes = 32;
  const CaseIsolator iso(lim);
  const IsolateResult r = iso.run([](std::string& report) {
    std::fprintf(stderr, "%s", std::string(100, 'x').c_str());
    std::fprintf(stderr, "LAST-WORDS");
    report = "partial";
    return 21;
  });
  EXPECT_EQ(r.status, IsolateResult::Status::kExited);
  EXPECT_EQ(r.exit_code, 21);
  EXPECT_EQ(r.report, "partial");
  // Only the tail is kept, and it ends with the child's final bytes.
  EXPECT_LE(r.stderr_tail.size(), 32u);
  EXPECT_NE(r.stderr_tail.find("LAST-WORDS"), std::string::npos);
}

TEST(CaseIsolator, ChildCrashIsCapturedAsItsSignal) {
  const CaseIsolator iso;
  const IsolateResult r = iso.run([](std::string&) -> int {
    std::raise(SIGSEGV);
    return 0;  // unreachable
  });
  EXPECT_EQ(r.status, IsolateResult::Status::kSignaled);
  EXPECT_EQ(r.term_signal, SIGSEGV);
}

TEST(CaseIsolator, ThrowingBodyExitsWithHarnessSentinel) {
  const CaseIsolator iso;
  const IsolateResult r = iso.run([](std::string&) -> int {
    throw std::runtime_error("soak body exploded");
  });
  EXPECT_EQ(r.status, IsolateResult::Status::kExited);
  EXPECT_EQ(r.exit_code, 125);
  // The exception text lands on the child's stderr.
  EXPECT_NE(r.stderr_tail.find("soak body exploded"), std::string::npos);
}

TEST(CaseIsolator, WallClockWatchdogKillsAWedgedChild) {
  IsolateLimits lim;
  lim.wall_seconds = 0.3;
  const CaseIsolator iso(lim);
  const IsolateResult r = iso.run([](std::string&) -> int {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  });
  EXPECT_EQ(r.status, IsolateResult::Status::kTimedOut);
  EXPECT_GE(r.wall_seconds, 0.3);
  EXPECT_LT(r.wall_seconds, 30.0);  // watchdog fired, not ctest's timeout
}

// ---------------------------------------------------------------------------
// Minimizer: greedy shrink against a synthetic predicate with a known
// 1-minimal form.

TEST(Minimizer, ShrinksToTheCauseAndKeepsIt) {
  // Synthetic bug: only bites with the planted overshoot AND a trace of at
  // least 150 ops. Everything else is shrinkable noise.
  const auto still_fails = [](const SoakCase& c) {
    return c.ff_overshoot != 0 && c.ops >= 150;
  };
  SoakCase big;
  big.ff_overshoot = 64;
  big.ops = 3000;
  big.cores = 8;
  big.cubes = 4;
  big.topology = Topology::kMesh;
  big.zipf = 1.2;
  big.store_percent = 50;
  big.mlp = 32;
  big.conc = 32;
  big.fault_rate = 0.01;
  big.drop_rate = 0.002;
  big.threads = 4;
  big.shards = 4;
  big.timeline = {{2000, FaultEventKind::kLinkDown, 0, 1},
                  {4000, FaultEventKind::kCubeDown, 2, 0}};
  ASSERT_TRUE(still_fails(big));

  MinimizeOptions opts;
  opts.max_evals = 128;
  opts.min_ops = 100;
  const Minimizer m(still_fails, opts);
  const MinimizeResult r = m.minimize(big);

  EXPECT_TRUE(still_fails(r.best));  // a minimized case must still fail
  EXPECT_GT(r.shrinks, 0u);
  EXPECT_LE(r.evals, opts.max_evals);
  // The cause survives; the noise does not.
  EXPECT_EQ(r.best.ff_overshoot, 64u);
  EXPECT_LT(r.best.ops, 300u);  // halved from 3000 toward the 150 threshold
  EXPECT_GE(r.best.ops, 150u);
  EXPECT_EQ(r.best.cores, 1u);
  EXPECT_EQ(r.best.cubes, 1u);
  EXPECT_EQ(r.best.topology, Topology::kChain);
  EXPECT_TRUE(r.best.timeline.empty());
  EXPECT_EQ(r.best.fault_rate, 0.0);
  EXPECT_EQ(r.best.drop_rate, 0.0);
  EXPECT_EQ(r.best.threads, 1u);
  EXPECT_EQ(r.best.shards, 1u);
  EXPECT_EQ(r.best.zipf, 0.0);
  EXPECT_EQ(r.best.store_percent, 0u);
  EXPECT_EQ(r.best.mlp, 8u);
  EXPECT_EQ(r.best.conc, 16u);
}

TEST(Minimizer, AlreadyMinimalCaseShrinksNothing) {
  const auto still_fails = [](const SoakCase& c) {
    return c.skip_timeline_clamp;
  };
  SoakCase tiny;
  tiny.skip_timeline_clamp = true;
  tiny.ops = 100;
  tiny.cores = 1;
  tiny.store_percent = 0;  // the default 20 would be one more shrink
  const Minimizer m(still_fails, MinimizeOptions{/*max_evals=*/32,
                                                 /*min_ops=*/100});
  const MinimizeResult r = m.minimize(tiny);
  EXPECT_EQ(r.shrinks, 0u);
  EXPECT_TRUE(r.best == tiny || r.best.skip_timeline_clamp);
  EXPECT_TRUE(still_fails(r.best));
}

TEST(Minimizer, RespectsTheEvalBudget) {
  int evals = 0;
  const auto still_fails = [&evals](const SoakCase& c) {
    ++evals;
    return c.ff_overshoot != 0;
  };
  SoakCase big;
  big.ff_overshoot = 64;
  big.ops = 3000;
  big.cores = 8;
  const Minimizer m(still_fails, MinimizeOptions{/*max_evals=*/5,
                                                 /*min_ops=*/100});
  const MinimizeResult r = m.minimize(big);
  EXPECT_LE(r.evals, 5u);
  EXPECT_EQ(evals, static_cast<int>(r.evals));
  EXPECT_TRUE(r.best.ff_overshoot != 0);
}

// ---------------------------------------------------------------------------
// OracleRunner: end-to-end differential verdicts. Small traces keep these
// in unit-test time; each run() executes up to five full simulations.

SoakCase small_case() {
  SoakCase c;
  c.coalescer = CoalescerKind::kPac;
  c.backend = BackendKind::kHmc;
  c.cubes = 1;
  c.cores = 2;
  c.ops = 800;
  c.quiesce_bursts = 4;  // drain windows: quiescent barriers to snapshot at
  c.mlp = 4;
  c.conc = 8;
  c.shards = 2;
  c.threads = 2;
  c.epoch_cycles = 1024;
  return c;
}

TEST(OracleRunner, CleanCaseRunsAllOraclesAndRemovesScratch) {
  OracleOptions opts;
  opts.workdir = scratch_dir("pacsim_fuzz_oracle_clean");
  const OracleRunner runner(opts);
  const Verdict v = runner.run(small_case());
  EXPECT_EQ(v.cls, SoakClass::kClean) << v.text();
  EXPECT_FALSE(v.failed());
  // ff-vs-naive, threaded-vs-serial, checkpoint-restore
  // (sharded-vs-classic needs shards==1); the drain windows guarantee the
  // restore oracle found a snapshot, so nothing was skipped.
  EXPECT_GE(v.oracles_checked, 3u) << v.text();
  EXPECT_EQ(v.oracles_skipped, 0u) << v.text();
  EXPECT_FALSE(fs::exists(opts.workdir));  // clean verdicts leave no scratch
}

TEST(OracleRunner, ShardedVsClassicOracleEngagesAtOneShard) {
  SoakCase c = small_case();
  c.shards = 1;
  c.threads = 1;
  OracleOptions opts;
  opts.workdir = scratch_dir("pacsim_fuzz_oracle_s1");
  const Verdict v = OracleRunner(opts).run(c);
  EXPECT_EQ(v.cls, SoakClass::kClean) << v.text();
  // ff-vs-naive, sharded-vs-classic, checkpoint-restore.
  EXPECT_GE(v.oracles_checked, 3u) << v.text();
  EXPECT_EQ(v.oracles_skipped, 0u) << v.text();
}

TEST(OracleRunner, UnquiescedCaseSkipsTheRestoreOracleDeterministically) {
  SoakCase c = small_case();
  c.quiesce_bursts = 0;  // continuous pressure: no snapshot can be taken
  c.ops = 200;
  OracleOptions opts;
  opts.workdir = scratch_dir("pacsim_fuzz_oracle_noq");
  const Verdict v = OracleRunner(opts).run(c);
  EXPECT_EQ(v.cls, SoakClass::kClean) << v.text();
  EXPECT_EQ(v.oracles_skipped, 1u) << v.text();  // counted, not ignored
}

TEST(OracleRunner, PlantedOvershootIsCaughtAsFfDivergence) {
  SoakCase c = small_case();
  c.ff_overshoot = 64;  // the planted next_event_cycle bound bug
  OracleOptions opts;
  opts.workdir = scratch_dir("pacsim_fuzz_oracle_plant");
  const Verdict v = OracleRunner(opts).run(c);
  EXPECT_EQ(v.cls, SoakClass::kDivergence) << v.text();
  EXPECT_EQ(v.oracle, "ff-vs-naive") << v.text();
  EXPECT_FALSE(v.detail.empty());
  fs::remove_all(opts.workdir);  // failing verdicts keep artifacts
}

TEST(OracleRunner, MinimizerDrivenByOraclesKeepsThePlantedKnob) {
  // The acceptance-path integration: minimize a planted failure with the
  // real oracle stack as the predicate, as bench_soak does.
  SoakCase c = small_case();
  c.ff_overshoot = 64;
  c.zipf = 1.2;
  c.store_percent = 50;
  OracleOptions opts;
  opts.workdir = scratch_dir("pacsim_fuzz_oracle_min");
  const OracleRunner runner(opts);
  const Verdict original = runner.run(c);
  ASSERT_EQ(original.cls, SoakClass::kDivergence) << original.text();

  const auto still_fails = [&](const SoakCase& cand) {
    const Verdict v = runner.run(cand);
    return v.cls == original.cls;
  };
  const Minimizer m(still_fails, MinimizeOptions{/*max_evals=*/12,
                                                 /*min_ops=*/100});
  const MinimizeResult r = m.minimize(c);
  EXPECT_GT(r.shrinks, 0u);
  EXPECT_EQ(r.best.ff_overshoot, 64u);  // the cause is not shrinkable
  EXPECT_TRUE(still_fails(r.best));
  fs::remove_all(opts.workdir);
}

}  // namespace
}  // namespace pacsim::fuzz
