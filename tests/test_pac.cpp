// End-to-end tests of the PAC coalescer attached to the HMC device model,
// including the coalescing invariants from DESIGN.md section 5.
#include "pac/pac.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "hmc/hmc_device.hpp"

namespace pacsim {
namespace {

struct PacHarness {
  PacConfig cfg;
  HmcConfig hmc_cfg;
  PowerModel power;
  std::unique_ptr<HmcDevice> device;
  std::unique_ptr<DevicePort> port;
  std::unique_ptr<Pac> pac;
  Cycle now = 0;
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> satisfied;

  explicit PacHarness(PacConfig c = {}, HmcConfig hc = {})
      : cfg(c), hmc_cfg(hc) {
    device = std::make_unique<HmcDevice>(hmc_cfg, &power);
    port = std::make_unique<DevicePort>(device.get(), RetryConfig{},
                                        /*tracking=*/false);
    pac = std::make_unique<Pac>(cfg, port.get());
  }

  MemRequest make(Addr paddr, MemOp op = MemOp::kLoad,
                  std::uint32_t bytes = 64) {
    MemRequest r;
    r.id = next_id++;
    r.paddr = paddr;
    r.bytes = bytes;
    r.op = op;
    r.created_at = now;
    return r;
  }

  void tick() {
    device->tick(now);
    for (const DeviceResponse& rsp : device->drain_completed()) {
      pac->complete(rsp, now);
    }
    pac->tick(now);
    for (std::uint64_t id : pac->drain_satisfied()) satisfied.push_back(id);
    ++now;
  }

  /// Offer a request, ticking until accepted.
  std::uint64_t feed(Addr paddr, MemOp op = MemOp::kLoad,
                     std::uint32_t bytes = 64) {
    MemRequest r = make(paddr, op, bytes);
    while (!pac->accept(r, now)) tick();
    return r.id;
  }

  void drain(Cycle limit = 200'000) {
    const Cycle start = now;
    while (!(pac->idle() && device->idle()) && now - start < limit) tick();
    ASSERT_TRUE(pac->idle()) << "PAC failed to drain";
    ASSERT_TRUE(device->idle());
  }
};

Addr addr(Addr ppn, unsigned block) {
  return (ppn << kPageShift) | (static_cast<Addr>(block) << 6);
}

TEST(Pac, SingleRequestIsServiced) {
  PacHarness h;
  const std::uint64_t id = h.feed(addr(5, 3));
  h.drain();
  EXPECT_EQ(h.satisfied, (std::vector<std::uint64_t>{id}));
  EXPECT_EQ(h.pac->stats().raw_requests, 1u);
  EXPECT_EQ(h.pac->stats().issued_requests, 1u);
}

TEST(Pac, AdjacentBlocksCoalesceInto256B) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;  // force the coalescing path
  PacHarness h(cfg);
  for (unsigned b = 0; b < 4; ++b) h.feed(addr(7, b));
  h.drain();
  EXPECT_EQ(h.pac->stats().raw_requests, 4u);
  EXPECT_EQ(h.pac->stats().issued_requests, 1u);
  EXPECT_EQ(h.pac->stats().issued_payload_bytes, 256u);
  EXPECT_DOUBLE_EQ(h.pac->stats().coalescing_efficiency(), 0.75);
  EXPECT_EQ(h.satisfied.size(), 4u);
}

TEST(Pac, NonAdjacentSamePageSplitIntoRuns) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  h.feed(addr(7, 0));
  h.feed(addr(7, 1));
  h.feed(addr(7, 3));  // gap at block 2
  h.drain();
  EXPECT_EQ(h.pac->stats().issued_requests, 2u);
  EXPECT_EQ(h.pac->stats().issued_payload_bytes, 128u + 64u);
}

TEST(Pac, ChunkBoundaryLimitsRequestSize) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  // Blocks 2..5 are contiguous but straddle the 4-block chunk boundary:
  // HMC's 256 B limit forces two requests (blocks 2-3 and 4-5).
  for (unsigned b = 2; b <= 5; ++b) h.feed(addr(9, b));
  h.drain();
  EXPECT_EQ(h.pac->stats().issued_requests, 2u);
  EXPECT_EQ(h.pac->stats().issued_payload_bytes, 256u);
}

TEST(Pac, LoadsAndStoresNeverShareARequest) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  h.feed(addr(7, 0), MemOp::kLoad);
  h.feed(addr(7, 1), MemOp::kStore);
  h.drain();
  EXPECT_EQ(h.pac->stats().issued_requests, 2u);
}

TEST(Pac, ConservationUnderRandomTraffic) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  Rng rng(2024);
  std::set<std::uint64_t> expected;
  for (int i = 0; i < 3000; ++i) {
    const Addr a = addr(rng.below(64), static_cast<unsigned>(rng.below(64)));
    const MemOp op = rng.below(4) == 0 ? MemOp::kStore : MemOp::kLoad;
    expected.insert(h.feed(a, op));
    if (rng.below(8) == 0) h.tick();
  }
  h.drain();
  // Every raw request satisfied exactly once.
  std::set<std::uint64_t> got;
  for (std::uint64_t id : h.satisfied) {
    EXPECT_TRUE(got.insert(id).second) << "raw id satisfied twice: " << id;
  }
  EXPECT_EQ(got, expected);
}

TEST(Pac, IssuedRequestsRespectInvariants) {
  // Invariants: never cross a page, size <= max_request, size multiple of
  // the granule, contained in a naturally aligned chunk.
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    h.feed(addr(rng.below(16), static_cast<unsigned>(rng.below(64))));
    if (rng.below(4) == 0) h.tick();
  }
  h.drain();
  const Histogram& sizes = h.pac->stats().request_size_bytes;
  for (const auto& [bytes, count] : sizes.buckets()) {
    EXPECT_GT(bytes, 0);
    EXPECT_LE(bytes, 256);
    EXPECT_EQ(bytes % 64, 0) << "size must be a granule multiple";
  }
}

TEST(Pac, TimeoutBoundsAggregationLatency) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  h.feed(addr(3, 0));
  // Without further requests the stream must flush at the timeout and the
  // request must complete shortly after the device round trip.
  h.drain();
  EXPECT_EQ(h.satisfied.size(), 1u);
  EXPECT_LT(h.now, 600u);
}

TEST(Pac, FenceFlushesAndDrains) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  h.feed(addr(1, 0));
  h.feed(addr(1, 1));
  MemRequest fence = h.make(0, MemOp::kFence, 0);
  ASSERT_TRUE(h.pac->accept(fence, h.now));
  EXPECT_TRUE(h.pac->fence_draining());
  // While draining, new requests are refused.
  MemRequest blocked = h.make(addr(2, 0));
  EXPECT_FALSE(h.pac->accept(blocked, h.now));
  h.drain();
  EXPECT_FALSE(h.pac->fence_draining());
  EXPECT_EQ(h.pac->stats().fences, 1u);
  // After the drain, traffic flows again.
  h.feed(addr(2, 0));
  h.drain();
  EXPECT_EQ(h.satisfied.size(), 3u);
}

TEST(Pac, AtomicsBypassCoalescing) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  const std::uint64_t a = h.feed(addr(1, 0), MemOp::kAtomic, 8);
  const std::uint64_t b = h.feed(addr(1, 0), MemOp::kAtomic, 8);
  h.drain();
  // Two atomics to the same block must become two device requests.
  EXPECT_EQ(h.pac->stats().atomics, 2u);
  EXPECT_EQ(h.pac->stats().issued_requests, 2u);
  EXPECT_EQ(h.satisfied.size(), 2u);
  EXPECT_NE(a, b);
}

TEST(Pac, BypassControllerShortCircuitsIdleNetwork) {
  PacConfig cfg;
  cfg.enable_bypass_controller = true;
  PacHarness h(cfg);
  // Warm the controller state: first tick establishes bypass (MAQ empty,
  // MSHRs free, network empty).
  h.tick();
  EXPECT_TRUE(h.pac->bypass_active());
  h.feed(addr(1, 0));
  EXPECT_GE(h.pac->pac_stats().controller_bypass_requests, 1u);
  h.drain();
  EXPECT_EQ(h.satisfied.size(), 1u);
}

TEST(Pac, BypassDisabledConfigNeverBypasses) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  for (int i = 0; i < 50; ++i) {
    h.feed(addr(static_cast<Addr>(i), 0));
    h.tick();
  }
  h.drain();
  EXPECT_EQ(h.pac->pac_stats().controller_bypass_requests, 0u);
  EXPECT_FALSE(h.pac->bypass_active());
}

TEST(Pac, C0StreamsBypassStages23) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  // Isolated single requests in distinct pages: all C=0.
  for (int i = 0; i < 8; ++i) h.feed(addr(static_cast<Addr>(100 + i), 7));
  h.drain();
  EXPECT_EQ(h.pac->pac_stats().c0_bypass_requests, 8u);
  EXPECT_EQ(h.pac->stats().issued_requests, 8u);
}

TEST(Pac, KroftCheckAbsorbsDuplicateBlocks) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  const std::uint64_t first = h.feed(addr(4, 2));
  // Let the request reach the MSHRs/device but not complete.
  for (int i = 0; i < cfg.timeout + 8; ++i) h.tick();
  const std::uint64_t dup = h.feed(addr(4, 2));
  h.drain();
  // Both raw ids satisfied; only one device request was needed.
  EXPECT_EQ(h.satisfied.size(), 2u);
  EXPECT_EQ(h.pac->stats().issued_requests, 1u);
  EXPECT_GE(h.pac->pac_stats().mshr_merges, 1u);
  EXPECT_NE(first, dup);
}


TEST(Pac, SecondaryCoalescingCanBeDisabled) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  cfg.enable_secondary_coalescing = false;
  PacHarness h(cfg);
  const std::uint64_t first = h.feed(addr(4, 2));
  for (int i = 0; i < cfg.timeout + 8; ++i) h.tick();
  const std::uint64_t dup = h.feed(addr(4, 2));
  h.drain();
  // Without the Kroft checks, the duplicate becomes its own device request.
  EXPECT_EQ(h.satisfied.size(), 2u);
  EXPECT_EQ(h.pac->stats().issued_requests, 2u);
  EXPECT_EQ(h.pac->pac_stats().mshr_merges, 0u);
  EXPECT_NE(first, dup);
}

TEST(Pac, MultiprocessPagesStaySeparate) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  // Same page number cannot happen across processes post-translation; but
  // identical PPNs with different ops coexist - sanity check stream reuse.
  h.feed(addr(11, 0), MemOp::kLoad);
  h.feed(addr(11, 1), MemOp::kStore);
  h.feed(addr(11, 2), MemOp::kLoad);
  h.drain();
  // Loads 0 and 2 are non-adjacent: 2 load requests + 1 store request.
  EXPECT_EQ(h.pac->stats().issued_requests, 3u);
}

TEST(Pac, HbmProtocolCoalescesUpTo1KB) {
  PacConfig cfg;
  cfg.protocol = CoalescingProtocol::hbm();
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  for (unsigned b = 0; b < 16; ++b) h.feed(addr(6, b));
  h.drain();
  EXPECT_EQ(h.pac->stats().issued_requests, 1u);
  EXPECT_EQ(h.pac->stats().issued_payload_bytes, 1024u);
  EXPECT_EQ(h.satisfied.size(), 16u);
}

TEST(Pac, FineProtocolCoalescesSmallAccesses) {
  PacConfig cfg;
  cfg.protocol = CoalescingProtocol::hmc_fine();
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  // Four 8 B accesses packing two 16 B FLITs plus a distant one.
  const Addr page = 13ULL << kPageShift;
  h.feed(page + 0, MemOp::kLoad, 8);
  h.feed(page + 8, MemOp::kLoad, 8);
  h.feed(page + 16, MemOp::kLoad, 8);
  h.feed(page + 512, MemOp::kLoad, 8);
  h.drain();
  EXPECT_EQ(h.satisfied.size(), 4u);
  // First three accesses fuse into one 32 B request; the distant one is 16 B.
  EXPECT_EQ(h.pac->stats().issued_requests, 2u);
  EXPECT_EQ(h.pac->stats().issued_payload_bytes, 32u + 16u);
}

TEST(Pac, BackpressureWhenStreamsExhausted) {
  PacConfig cfg;
  cfg.num_streams = 2;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  MemRequest a = h.make(addr(1, 0));
  MemRequest b = h.make(addr(2, 0));
  MemRequest c = h.make(addr(3, 0));
  ASSERT_TRUE(h.pac->accept(a, h.now));
  ASSERT_TRUE(h.pac->accept(b, h.now));
  EXPECT_FALSE(h.pac->accept(c, h.now));  // both streams busy
  h.drain();
  ASSERT_TRUE(h.pac->accept(c, h.now));
  h.drain();
  EXPECT_EQ(h.satisfied.size(), 3u);
}

TEST(Pac, RetryAfterBackpressurePreservesRequestLatency) {
  // With the device admitting one request at a time, later MSHR entries are
  // refused and retried for many cycles. The request-latency statistic must
  // include that refused time (the retry keeps the original assembly
  // cycle), so queueing behind 5 other requests must show up as a max
  // latency well above the min (an uncontended round trip).
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  HmcConfig hmc;
  hmc.max_outstanding = 1;
  PacHarness h(cfg, hmc);
  for (int i = 0; i < 6; ++i) h.feed(addr(static_cast<Addr>(i + 1), 0));
  h.drain();
  const RunningStat& lat = h.pac->pac_stats().request_latency;
  EXPECT_EQ(lat.count(), h.pac->stats().issued_requests);
  EXPECT_GE(lat.max(), 2.0 * lat.min())
      << "back-pressure wait is missing from the latency accounting";
}

TEST(Pac, KroftCheckCoversPendingC0Request) {
  // A C=0 single request that found the MAQ full parks in front of it
  // (pending_c0_). A later load to the same block must attach to that
  // parked request; re-aggregating it would fetch the block twice.
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  cfg.num_mshrs = 1;
  cfg.maq_entries = 1;
  HmcConfig hmc;
  hmc.max_outstanding = 1;
  PacHarness h(cfg, hmc);
  // Three isolated single-block loads: one reaches the MSHR/device, one
  // waits in the single MAQ slot, the third parks as pending_c0_.
  h.feed(addr(1, 0));
  h.feed(addr(2, 0));
  const std::uint64_t parked = h.feed(addr(3, 0));
  for (int i = 0; i < 500 && !h.pac->has_pending_c0(); ++i) h.tick();
  ASSERT_TRUE(h.pac->has_pending_c0());

  const std::uint64_t before = h.pac->pac_stats().mshr_merges;
  MemRequest dup = h.make(addr(3, 0));
  ASSERT_TRUE(h.pac->accept(dup, h.now));
  EXPECT_EQ(h.pac->pac_stats().mshr_merges, before + 1)
      << "the duplicate should attach to the parked C=0 request";

  h.drain();
  // All four raw ids satisfied exactly once, from three device requests.
  std::set<std::uint64_t> got;
  for (std::uint64_t id : h.satisfied) {
    EXPECT_TRUE(got.insert(id).second) << "raw id satisfied twice: " << id;
  }
  EXPECT_EQ(h.satisfied.size(), 4u);
  EXPECT_TRUE(got.count(parked));
  EXPECT_TRUE(got.count(dup.id));
  EXPECT_EQ(h.pac->stats().issued_requests, 3u);
}

TEST(Pac, StreamOccupancySampled) {
  PacConfig cfg;
  cfg.enable_bypass_controller = false;
  PacHarness h(cfg);
  for (int i = 0; i < 6; ++i) h.feed(addr(static_cast<Addr>(i), 0));
  for (int i = 0; i < 40; ++i) h.tick();
  h.drain();
  EXPECT_GT(h.pac->pac_stats().stream_occupancy.total(), 0u);
}

}  // namespace
}  // namespace pacsim
