#include "common/fixed_queue.hpp"

#include <gtest/gtest.h>

namespace pacsim {
namespace {

TEST(FixedQueue, StartsEmpty) {
  FixedQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.free_slots(), 4u);
}

TEST(FixedQueue, PushPopFifoOrder) {
  FixedQueue<int> q(3);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, PushFailsWhenFull) {
  FixedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(FixedQueue, FrontPeeksWithoutRemoving) {
  FixedQueue<int> q(2);
  ASSERT_TRUE(q.push(7));
  EXPECT_EQ(q.front(), 7);
  EXPECT_EQ(q.size(), 1u);
  q.front() = 9;
  EXPECT_EQ(q.pop(), 9);
}

TEST(FixedQueue, ReusableAfterDrain) {
  FixedQueue<int> q(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(q.push(i));
    EXPECT_FALSE(q.push(i));
    EXPECT_EQ(q.pop(), i);
  }
}

TEST(FixedQueue, Clear) {
  FixedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.free_slots(), 4u);
}

TEST(FixedQueue, EraseIfRemovesMatching) {
  FixedQueue<int> q(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.push(i));
  const std::size_t removed = q.erase_if([](int v) { return v % 2 == 0; });
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 3);
}

TEST(FixedQueue, EraseIfPreservesOrder) {
  FixedQueue<int> q(6);
  for (int v : {5, 2, 9, 4, 7}) ASSERT_TRUE(q.push(v));
  q.erase_if([](int v) { return v > 6; });
  EXPECT_EQ(q.pop(), 5);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 4);
  EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, IterationVisitsFifoOrder) {
  FixedQueue<int> q(4);
  for (int v : {3, 1, 2}) ASSERT_TRUE(q.push(v));
  std::vector<int> seen(q.begin(), q.end());
  EXPECT_EQ(seen, (std::vector<int>{3, 1, 2}));
}

TEST(FixedQueue, MoveOnlyTypes) {
  FixedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.push(std::make_unique<int>(42)));
  auto p = q.pop();
  EXPECT_EQ(*p, 42);
}

// The empty-access check must stay on in release builds: a silent
// moved-from return here would corrupt simulation state far downstream.
using FixedQueueDeathTest = ::testing::Test;

TEST(FixedQueueDeathTest, PopOnEmptyAborts) {
  FixedQueue<int> q(2);
  EXPECT_DEATH((void)q.pop(), "FixedQueue::pop on empty queue");
}

TEST(FixedQueueDeathTest, FrontOnEmptyAborts) {
  FixedQueue<int> q(2);
  EXPECT_DEATH((void)q.front(), "FixedQueue::front on empty queue");
  const FixedQueue<int>& cq = q;
  EXPECT_DEATH((void)cq.front(), "FixedQueue::front on empty queue");
}

TEST(FixedQueueDeathTest, DrainedQueueAborts) {
  FixedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  (void)q.pop();
  EXPECT_DEATH((void)q.pop(), "FixedQueue::pop on empty queue");
}

}  // namespace
}  // namespace pacsim
