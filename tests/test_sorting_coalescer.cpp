#include "baseline/sorting_coalescer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "hmc/hmc_device.hpp"

namespace pacsim {
namespace {

struct Harness {
  HmcConfig hmc_cfg;
  PowerModel power;
  HmcDevice device{hmc_cfg, &power};
  DevicePort port{&device, RetryConfig{}, /*tracking=*/false};
  SortingCoalescer coalescer;
  Cycle now = 0;
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> satisfied;

  explicit Harness(SortingCoalescerConfig cfg = {})
      : coalescer(cfg, &port) {}

  MemRequest make(Addr paddr, MemOp op = MemOp::kLoad) {
    MemRequest r;
    r.id = next_id++;
    r.paddr = paddr;
    r.op = op;
    return r;
  }

  void tick() {
    device.tick(now);
    for (const DeviceResponse& rsp : device.drain_completed()) {
      coalescer.complete(rsp, now);
    }
    coalescer.tick(now);
    for (auto id : coalescer.drain_satisfied()) satisfied.push_back(id);
    ++now;
  }

  std::uint64_t feed(Addr paddr, MemOp op = MemOp::kLoad) {
    MemRequest r = make(paddr, op);
    while (!coalescer.accept(r, now)) tick();
    return r.id;
  }

  void drain() {
    while (!(coalescer.idle() && device.idle())) tick();
  }
};

TEST(SortingCoalescer, MergesContiguousWindow) {
  Harness h;
  // A full window of 16 contiguous lines = 1 KB: with 256 B packets this
  // becomes exactly 4 requests.
  for (Addr b = 0; b < 16; ++b) h.feed(0x10000 + b * 64);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 4u);
  EXPECT_EQ(h.coalescer.stats().issued_payload_bytes, 1024u);
  EXPECT_EQ(h.satisfied.size(), 16u);
}

TEST(SortingCoalescer, SortsOutOfOrderArrivals) {
  Harness h;
  // The same 16 lines in shuffled order still coalesce into 4 packets -
  // that is the point of the sorting network.
  const int order[16] = {7, 0, 12, 3, 15, 8, 1, 11, 4, 14, 2, 9, 6, 13, 5, 10};
  for (int b : order) h.feed(0x20000 + static_cast<Addr>(b) * 64);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 4u);
}

TEST(SortingCoalescer, DuplicateLinesFold) {
  Harness h;
  const auto a = h.feed(0x30000);
  const auto b = h.feed(0x30000);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 1u);
  std::set<std::uint64_t> got(h.satisfied.begin(), h.satisfied.end());
  EXPECT_EQ(got, (std::set<std::uint64_t>{a, b}));
}

TEST(SortingCoalescer, LoadsAndStoresSplit) {
  Harness h;
  h.feed(0x40000, MemOp::kLoad);
  h.feed(0x40040, MemOp::kStore);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 2u);
}

TEST(SortingCoalescer, TimeoutFlushesPartialWindow) {
  Harness h;
  h.feed(0x50000);
  h.drain();  // only the 16-cycle timeout can flush this single request
  EXPECT_EQ(h.satisfied.size(), 1u);
  EXPECT_EQ(h.coalescer.stats().issued_requests, 1u);
}

TEST(SortingCoalescer, EverySortPaysFullNetworkComparators) {
  Harness h;
  h.feed(0x60000);
  h.drain();
  // Bitonic network for 16 inputs: 80 comparators per sort, even when the
  // window held a single request - the scaling weakness of this design.
  EXPECT_EQ(h.coalescer.stats().comparisons,
            SortingNetwork::bitonic(16).comparator_count());
}

TEST(SortingCoalescer, FenceForcesSort) {
  Harness h;
  h.feed(0x70000);
  h.feed(0x70040);
  MemRequest fence = h.make(0, MemOp::kFence);
  ASSERT_TRUE(h.coalescer.accept(fence, h.now));
  EXPECT_EQ(h.coalescer.window_occupancy(), 0u);  // window flushed
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 1u);  // merged 128 B
}

TEST(SortingCoalescer, MaxRequestBoundRespected) {
  SortingCoalescerConfig cfg;
  cfg.window = 8;
  Harness h(cfg);
  for (Addr b = 0; b < 8; ++b) h.feed(0x80000 + b * 64);
  h.drain();
  for (const auto& [bytes, count] : h.coalescer.stats().request_size_bytes.buckets()) {
    EXPECT_LE(bytes, 256);
  }
  EXPECT_EQ(h.coalescer.stats().issued_requests, 2u);
}

TEST(SortingCoalescer, ConservationUnderRandomTraffic) {
  Harness h;
  Rng rng(17);
  std::set<std::uint64_t> expected;
  for (int i = 0; i < 1200; ++i) {
    const Addr a = rng.below(512) * 64;
    const std::uint64_t dice = rng.below(16);
    const MemOp op = dice == 0   ? MemOp::kAtomic
                     : dice <= 4 ? MemOp::kStore
                                 : MemOp::kLoad;
    expected.insert(h.feed(a, op));
    if (rng.below(3) == 0) h.tick();
  }
  h.drain();
  std::set<std::uint64_t> got;
  for (auto id : h.satisfied) {
    EXPECT_TRUE(got.insert(id).second) << "double-satisfied " << id;
  }
  EXPECT_EQ(got, expected);
}

TEST(SortingCoalescer, BackpressureWhileSorting) {
  Harness h;
  for (Addr b = 0; b < 16; ++b) h.feed(0x90000 + b * 64);
  // Window is being sorted (depth cycles): new requests are refused.
  h.coalescer.tick(h.now);
  MemRequest r = h.make(0xA0000);
  EXPECT_FALSE(h.coalescer.accept(r, h.now));
  h.drain();
  EXPECT_TRUE(h.coalescer.accept(r, h.now));
  h.drain();
}

}  // namespace
}  // namespace pacsim
