// Promoted soak reproducers (DESIGN.md "Chaos-soak fuzzing", reproducer
// promotion). Each test embeds a `bench_soak`-written reproducer file
// verbatim, replays it through the same load_repro + OracleRunner path the
// bench's `repro=` mode uses, and asserts the verdict the campaign
// recorded. Soak findings graduate here so they stay fixed (or, for the
// planted acceptance bug, stay *caught*) under plain ctest.
//
// Status as of the initial campaign sweep: a 200-case defaults-domain
// campaign (soakseed=1) ran fully clean, so the suite currently carries
// the planted-bug reproducers that prove the oracle/minimizer pipeline
// bites; genuine findings get appended with a comment naming the campaign
// seed and case id that produced them.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "fuzz/oracle_runner.hpp"
#include "fuzz/soak_case.hpp"

namespace pacsim::fuzz {
namespace {

namespace fs = std::filesystem;

// Replays repro text exactly as `bench_soak repro=<file>` does: write the
// bytes out, load through the Cli file parser, run the oracle stack.
Verdict replay(const std::string& name, const std::string& repro_text) {
  const fs::path dir = fs::path(::testing::TempDir()) / "pacsim_soak_repros";
  fs::create_directories(dir);
  const std::string path = (dir / (name + ".txt")).string();
  {
    std::ofstream out(path, std::ios::binary);
    out << repro_text;
  }
  const SoakCase c = load_repro(path);
  OracleOptions opts;
  opts.workdir = (dir / (name + "-scratch")).string();
  const Verdict v = OracleRunner(opts).run(c);
  fs::remove_all(dir);
  return v;
}

// Campaign soakseed=1 soakcases=6 soakplant=ffovershoot, case 1, minimized
// by the campaign's delta-debugger (16 evals, 13 shrinks). The planted
// fast-forward overshoot pushes run_until() past the proven event horizon;
// ff-vs-naive catches it as a cycle-count divergence. The minimized form
// keeps only the cause (ffovershoot=64) plus the smallest trace that still
// exposes it.
constexpr const char* kPlantedOvershootRepro =
    "# pacsim soak reproducer - replay with `bench_soak repro=<this file>`\n"
    "# verdict: divergence (ff-vs-naive)\n"
    "case=1\n"
    "controller=pac\n"
    "backend=hbm\n"
    "cubes=1\n"
    "topology=chain\n"
    "cores=1\n"
    "ops=187\n"
    "seed=14257765434098697751\n"
    "zipf=0\n"
    "storepct=0\n"
    "gapmax=8\n"
    "mlp=8\n"
    "conc=16\n"
    "faultrate=0\n"
    "faultdrop=0\n"
    "faultstall=0\n"
    "burstlen=1\n"
    "faultseed=12195351233415548220\n"
    "failpolicy=contain\n"
    "sparepages=4096\n"
    "threads=1\n"
    "shards=1\n"
    "epochlen=32768\n"
    "ffovershoot=64\n"
    "skipclamp=0\n";

TEST(SoakRepros, PlantedFfOvershootStillCaughtAsDivergence) {
  const Verdict v = replay("planted-ff-overshoot", kPlantedOvershootRepro);
  EXPECT_EQ(v.cls, SoakClass::kDivergence) << v.text();
  EXPECT_EQ(v.oracle, "ff-vs-naive") << v.text();
}

// The same minimized case with the perturbation knob cleared must be
// clean: proves the reproducer isolates the planted cause, not an
// incidental configuration the simulator genuinely mishandles.
TEST(SoakRepros, PlantedReproIsCleanWithoutThePerturbation) {
  std::string fixed = kPlantedOvershootRepro;
  const auto at = fixed.find("ffovershoot=64");
  ASSERT_NE(at, std::string::npos);
  fixed.replace(at, std::string("ffovershoot=64").size(), "ffovershoot=0");
  const Verdict v = replay("planted-ff-overshoot-fixed", fixed);
  EXPECT_EQ(v.cls, SoakClass::kClean) << v.text();
}

// Second planted bug, campaign soakseed=9 soakcases=40
// soakplant=skipclamp, case 11, minimized by the campaign's
// delta-debugger. Skipping the hard-failure timeline clamp in
// next_event_cycle() lets fast-forward leap over a scheduled event's
// cycle and fire it late; the dead-unit downtime accounting
// (unit_cycles_lost) then disagrees with the naive per-cycle path. The
// late firing is only observable when a drain window (qbursts) spans a
// scheduled cubedown, which is why the minimized case keeps the timeline
// and the quiescent-window cadence.
constexpr const char* kPlantedSkipClampRepro =
    "# pacsim soak reproducer - replay with `bench_soak repro=<this file>`\n"
    "# verdict: divergence (ff-vs-naive): report line 94: "
    "'\"unit_cycles_lost\": 364684,' vs '\"unit_cycles_lost\": 364700,'\n"
    "case=11\n"
    "controller=direct\n"
    "backend=ddr\n"
    "cubes=4\n"
    "topology=chain\n"
    "cores=2\n"
    "ops=3000\n"
    "seed=13074369672509604716\n"
    "zipf=0\n"
    "storepct=50\n"
    "gapmax=8\n"
    "qbursts=16\n"
    "mlp=4\n"
    "conc=8\n"
    "faultrate=0\n"
    "faultdrop=0.01\n"
    "faultstall=0.01\n"
    "burstlen=1\n"
    "faultseed=18056980004387648804\n"
    "linkdown=15511:0-1\n"
    "cubedown=8729:0,10474:0\n"
    "failpolicy=contain\n"
    "sparepages=4096\n"
    "threads=1\n"
    "shards=1\n"
    "epochlen=1024\n"
    "ffovershoot=0\n"
    "skipclamp=1\n";

TEST(SoakRepros, PlantedTimelineClampSkipIsCaught) {
  const Verdict v = replay("planted-skip-clamp", kPlantedSkipClampRepro);
  EXPECT_TRUE(v.failed()) << v.text();
  // Missing the scheduled cycle surfaces as an ff-vs-naive divergence
  // (the naive path steps cycle-by-cycle and cannot overshoot).
  EXPECT_EQ(v.cls, SoakClass::kDivergence) << v.text();
  EXPECT_EQ(v.oracle, "ff-vs-naive") << v.text();
}

TEST(SoakRepros, SkipClampReproIsCleanWithoutThePerturbation) {
  std::string fixed = kPlantedSkipClampRepro;
  const auto at = fixed.find("skipclamp=1");
  ASSERT_NE(at, std::string::npos);
  fixed.replace(at, std::string("skipclamp=1").size(), "skipclamp=0");
  const Verdict v = replay("planted-skip-clamp-fixed", fixed);
  EXPECT_EQ(v.cls, SoakClass::kClean) << v.text();
}

}  // namespace
}  // namespace pacsim::fuzz
