#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace pacsim {
namespace {

RunResult sample_result() {
  RunResult r;
  r.cycles = 1000;
  r.coal.raw_requests = 100;
  r.coal.coalesced_away = 40;
  r.coal.issued_requests = 60;
  r.coal.issued_payload_bytes = 60 * 64;
  r.coal.request_size_bytes.add(64, 50);
  r.coal.request_size_bytes.add(256, 10);
  r.hmc.bank_conflicts = 7;
  r.has_pac = true;
  r.pac.mshr_merges = 3;
  r.pac.stream_occupancy.add(4, 10);
  return r;
}

TEST(RunReport, ContainsHeadlineMetrics) {
  const std::string json =
      run_report_json("stream/pac", CoalescerKind::kPac, sample_result());
  EXPECT_NE(json.find("\"label\": \"stream/pac\""), std::string::npos);
  EXPECT_NE(json.find("\"coalescer\": \"pac\""), std::string::npos);
  EXPECT_NE(json.find("\"cycles\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"coalescing_efficiency\": 0.4"), std::string::npos);
  EXPECT_NE(json.find("\"bank_conflicts\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"64\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"256\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"mshr_merges\": 3"), std::string::npos);
  EXPECT_NE(json.find("VAULT-RQST-SLOT"), std::string::npos);
}

TEST(RunReport, OmitsPacSectionForBaselines) {
  RunResult r = sample_result();
  r.has_pac = false;
  const std::string json =
      run_report_json("x", CoalescerKind::kDirect, r);
  EXPECT_EQ(json.find("\"pac\""), std::string::npos);
}

TEST(RunReport, EscapesLabel) {
  const std::string json = run_report_json("we\"ird\\label",
                                           CoalescerKind::kMshrDmc,
                                           sample_result());
  EXPECT_NE(json.find("we\\\"ird\\\\label"), std::string::npos);
}

TEST(RunReport, BalancedBracesAndQuotes) {
  const std::string json =
      run_report_json("b", CoalescerKind::kPac, sample_result());
  int depth = 0;
  int quotes = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
    }
    if (in_string) continue;
    depth += c == '{';
    depth -= c == '}';
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);
  EXPECT_FALSE(in_string);
}

TEST(RunReport, WritesToFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pacsim_report.json").string();
  write_run_report(path, "file-test", CoalescerKind::kPac, sample_result());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"label\": \"file-test\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunReport, RejectsUnwritablePath) {
  EXPECT_THROW(write_run_report("/nonexistent-dir/x.json", "a",
                                CoalescerKind::kPac, sample_result()),
               std::runtime_error);
}

}  // namespace
}  // namespace pacsim
