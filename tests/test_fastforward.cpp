// Event-horizon fast-forwarding: differential property tests proving that
// System::run() with cycle skipping produces bit-identical RunResults to
// the naive per-cycle loop, plus unit tests for every component's
// next_event_cycle() lower bound.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "baseline/direct_controller.hpp"
#include "baseline/mshr_dmc.hpp"
#include "baseline/sorting_coalescer.hpp"
#include "common/rng.hpp"
#include "hmc/hmc_device.hpp"
#include "pac/pac.hpp"
#include "pac/request_aggregator.hpp"
#include "sim/report.hpp"
#include "sim/system.hpp"

namespace pacsim {
namespace {

// ---------------------------------------------------------------------------
// Differential property test: fast-forward vs. naive must be bit-identical.
// ---------------------------------------------------------------------------

/// A randomized trace mixing every op kind. Long computes and page jumps
/// create the idle stretches fast-forwarding exploits; bursts of sequential
/// loads exercise the coalescing paths.
Trace random_trace(Rng& rng, std::size_t ops) {
  Trace t;
  Addr cursor = 0x10000000 + rng.below(8) * 0x400000;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t pick = rng.below(100);
    if (pick < 40) {
      // Load: mostly sequential (coalescable), sometimes a page jump.
      if (rng.below(8) == 0) cursor = 0x10000000 + rng.below(64) * 0x11000;
      t.push_back({cursor, 8, OpKind::kLoad});
      cursor += 64;
    } else if (pick < 55) {
      t.push_back({cursor + rng.below(16) * 64, 8, OpKind::kStore});
    } else if (pick < 58) {
      t.push_back({0x30000000 + rng.below(32) * 4096, 8, OpKind::kAtomic});
    } else if (pick < 60) {
      t.push_back({0, 0, OpKind::kFence});
    } else if (pick < 90) {
      t.push_back({0, 1 + rng.below(8), OpKind::kCompute});
    } else {
      // Long compute: an idle window hundreds of cycles wide.
      t.push_back({0, 50 + rng.below(400), OpKind::kCompute});
    }
  }
  return t;
}

RunResult run_once(CoalescerKind kind, bool prefetch, bool fast_forward,
                   std::uint64_t seed,
                   BackendKind backend = BackendKind::kHmc) {
  SystemConfig cfg;
  cfg.coalescer = kind;
  cfg.backend = backend;
  cfg.num_cores = 3;
  cfg.enable_prefetch = prefetch;
  cfg.enable_fast_forward = fast_forward;
  cfg.record_raw_trace = true;  // captured addresses must match too
  cfg.max_cycles = 50'000'000;
  System sys(cfg);
  Rng rng(seed);
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    sys.load_trace(core, random_trace(rng, 1000));
  }
  return sys.run();
}

void expect_stat_eq(const RunningStat& a, const RunningStat& b,
                    const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.sum(), b.sum()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

/// Field-by-field identity, including metrics the JSON report omits
/// (conflict wait cycles, flit counts, the raw-trace capture).
void expect_identical(const RunResult& ff, const RunResult& naive) {
  EXPECT_EQ(ff.cycles, naive.cycles);
  EXPECT_EQ(ff.core_stall_cycles, naive.core_stall_cycles);
  EXPECT_EQ(ff.l1_hits, naive.l1_hits);
  EXPECT_EQ(ff.l1_misses, naive.l1_misses);
  EXPECT_EQ(ff.llc_hits, naive.llc_hits);
  EXPECT_EQ(ff.llc_misses, naive.llc_misses);
  EXPECT_EQ(ff.prefetches_issued, naive.prefetches_issued);

  EXPECT_EQ(ff.coal.raw_requests, naive.coal.raw_requests);
  EXPECT_EQ(ff.coal.coalesced_away, naive.coal.coalesced_away);
  EXPECT_EQ(ff.coal.issued_requests, naive.coal.issued_requests);
  EXPECT_EQ(ff.coal.issued_payload_bytes, naive.coal.issued_payload_bytes);
  EXPECT_EQ(ff.coal.comparisons, naive.coal.comparisons);
  EXPECT_EQ(ff.coal.atomics, naive.coal.atomics);
  EXPECT_EQ(ff.coal.fences, naive.coal.fences);
  EXPECT_EQ(ff.coal.request_size_bytes.buckets(),
            naive.coal.request_size_bytes.buckets());

  EXPECT_EQ(ff.hmc.requests, naive.hmc.requests);
  EXPECT_EQ(ff.hmc.row_accesses, naive.hmc.row_accesses);
  EXPECT_EQ(ff.hmc.bank_conflicts, naive.hmc.bank_conflicts);
  EXPECT_EQ(ff.hmc.conflict_wait_cycles, naive.hmc.conflict_wait_cycles);
  EXPECT_EQ(ff.hmc.refreshes, naive.hmc.refreshes);
  EXPECT_EQ(ff.hmc.row_hits, naive.hmc.row_hits);
  EXPECT_EQ(ff.hmc.row_misses, naive.hmc.row_misses);
  EXPECT_EQ(ff.hmc.local_routes, naive.hmc.local_routes);
  EXPECT_EQ(ff.hmc.remote_routes, naive.hmc.remote_routes);
  EXPECT_EQ(ff.hmc.request_flits, naive.hmc.request_flits);
  EXPECT_EQ(ff.hmc.response_flits, naive.hmc.response_flits);
  EXPECT_EQ(ff.hmc.payload_bytes, naive.hmc.payload_bytes);
  expect_stat_eq(ff.hmc.access_latency, naive.hmc.access_latency,
                 "hmc.access_latency");

  ASSERT_EQ(ff.energy.size(), naive.energy.size());
  for (std::size_t op = 0; op < ff.energy.size(); ++op) {
    EXPECT_EQ(ff.energy[op], naive.energy[op]) << "energy op " << op;
  }
  EXPECT_EQ(ff.total_energy, naive.total_energy);
  EXPECT_EQ(ff.raw_trace, naive.raw_trace);

  ASSERT_EQ(ff.has_pac, naive.has_pac);
  if (ff.has_pac) {
    EXPECT_EQ(ff.pac.flushed_streams, naive.pac.flushed_streams);
    EXPECT_EQ(ff.pac.timeout_flushes, naive.pac.timeout_flushes);
    EXPECT_EQ(ff.pac.fence_flushes, naive.pac.fence_flushes);
    EXPECT_EQ(ff.pac.full_chunk_flushes, naive.pac.full_chunk_flushes);
    EXPECT_EQ(ff.pac.c0_bypass_requests, naive.pac.c0_bypass_requests);
    EXPECT_EQ(ff.pac.controller_bypass_requests,
              naive.pac.controller_bypass_requests);
    EXPECT_EQ(ff.pac.cross_page_adjacent, naive.pac.cross_page_adjacent);
    EXPECT_EQ(ff.pac.mshr_merges, naive.pac.mshr_merges);
    EXPECT_EQ(ff.pac.stream_occupancy.buckets(),
              naive.pac.stream_occupancy.buckets());
    expect_stat_eq(ff.pac.stage2_latency, naive.pac.stage2_latency,
                   "pac.stage2_latency");
    expect_stat_eq(ff.pac.stage3_latency, naive.pac.stage3_latency,
                   "pac.stage3_latency");
    expect_stat_eq(ff.pac.maq_fill_latency, naive.pac.maq_fill_latency,
                   "pac.maq_fill_latency");
    expect_stat_eq(ff.pac.request_latency, naive.pac.request_latency,
                   "pac.request_latency");
  }
}

struct FfCase {
  CoalescerKind kind;
  bool prefetch;
  BackendKind backend = BackendKind::kHmc;
};

class FastForwardDifferential : public ::testing::TestWithParam<FfCase> {};

TEST_P(FastForwardDifferential, BitIdenticalToNaiveLoop) {
  const FfCase c = GetParam();
  for (std::uint64_t seed : {0xD1FFull, 0xBEEFull, 0x5EEDull}) {
    const RunResult ff = run_once(c.kind, c.prefetch, /*fast_forward=*/true,
                                  seed, c.backend);
    const RunResult naive = run_once(c.kind, c.prefetch,
                                     /*fast_forward=*/false, seed, c.backend);
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_identical(ff, naive);
    // The serialized report is the union of everything the benches print;
    // byte-equality means no table or JSON artifact can diverge either.
    // (sim_throughput is host wall-clock, hence excluded.)
    EXPECT_EQ(run_report_json("d", c.kind, ff, /*include_throughput=*/false),
              run_report_json("d", c.kind, naive,
                              /*include_throughput=*/false));
    // The naive run must genuinely be naive, and the fast-forward run must
    // genuinely skip: otherwise this test proves nothing.
    EXPECT_EQ(naive.throughput.fast_forward_jumps, 0u);
    EXPECT_GT(ff.throughput.fast_forward_jumps, 0u);
    EXPECT_GT(ff.throughput.skipped_cycles, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndPrefetch, FastForwardDifferential,
    ::testing::Values(
        FfCase{CoalescerKind::kDirect, true},
        FfCase{CoalescerKind::kDirect, false},
        FfCase{CoalescerKind::kMshrDmc, true},
        FfCase{CoalescerKind::kMshrDmc, false},
        FfCase{CoalescerKind::kSortingDmc, true},
        FfCase{CoalescerKind::kSortingDmc, false},
        FfCase{CoalescerKind::kPac, true},
        FfCase{CoalescerKind::kPac, false},
        // Every coalescer on both alternative substrates: the event-horizon
        // contract (next_event_cycle is an exact lower bound) must hold for
        // the open-page HBM and DDR state machines too.
        FfCase{CoalescerKind::kDirect, true, BackendKind::kHbm},
        FfCase{CoalescerKind::kMshrDmc, true, BackendKind::kHbm},
        FfCase{CoalescerKind::kSortingDmc, true, BackendKind::kHbm},
        FfCase{CoalescerKind::kPac, true, BackendKind::kHbm},
        FfCase{CoalescerKind::kDirect, true, BackendKind::kDdr},
        FfCase{CoalescerKind::kMshrDmc, true, BackendKind::kDdr},
        FfCase{CoalescerKind::kSortingDmc, true, BackendKind::kDdr},
        FfCase{CoalescerKind::kPac, true, BackendKind::kDdr}),
    [](const auto& info) {
      std::string n(to_string(info.param.kind));
      if (info.param.backend != BackendKind::kHmc) {
        n += "_" + std::string(to_string(info.param.backend));
      }
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + (info.param.prefetch ? "_pf" : "_nopf");
    });

TEST(FastForward, EnvVarDisablesSkipping) {
  ASSERT_EQ(::setenv("PACSIM_NO_FASTFORWARD", "1", 1), 0);
  const RunResult r =
      run_once(CoalescerKind::kPac, true, /*fast_forward=*/true, 0xE17ull);
  ::unsetenv("PACSIM_NO_FASTFORWARD");
  EXPECT_EQ(r.throughput.fast_forward_jumps, 0u);
  EXPECT_EQ(r.throughput.skipped_cycles, 0u);
  // And with the variable cleared the same config does skip.
  const RunResult ff =
      run_once(CoalescerKind::kPac, true, /*fast_forward=*/true, 0xE17ull);
  EXPECT_GT(ff.throughput.fast_forward_jumps, 0u);
  expect_identical(ff, r);
}

TEST(FastForward, ThroughputBlockIsPopulated) {
  const RunResult r =
      run_once(CoalescerKind::kDirect, false, /*fast_forward=*/true, 7);
  EXPECT_EQ(r.throughput.sim_cycles, r.cycles);
  EXPECT_GT(r.throughput.wall_seconds, 0.0);
  EXPECT_GT(r.throughput.mcycles_per_sec(), 0.0);
  EXPECT_GE(r.cycles, r.throughput.skipped_cycles);
}

// ---------------------------------------------------------------------------
// Per-component next_event_cycle() unit tests.
// ---------------------------------------------------------------------------

TEST(NextEventCycle, HmcDeviceIdleBoundIsRefreshTimer) {
  PowerModel power;
  HmcConfig cfg;
  HmcDevice device(cfg, &power);
  // Fresh device: nothing queued, first refresh due at t_refi.
  EXPECT_EQ(device.next_event_cycle(0), Cycle{cfg.t_refi});
  // The bound never goes backwards in time.
  EXPECT_EQ(device.next_event_cycle(cfg.t_refi + 7), Cycle{cfg.t_refi + 7});
}

TEST(NextEventCycle, HmcDeviceWithoutRefreshIsDemandDriven) {
  PowerModel power;
  HmcConfig cfg;
  cfg.enable_refresh = false;
  HmcDevice device(cfg, &power);
  EXPECT_EQ(device.next_event_cycle(0), kNeverCycle);

  DeviceRequest r;
  r.id = 1;
  r.base = 0;
  r.bytes = 64;
  r.add_raw(100);
  device.submit(r, /*now=*/5);
  const Cycle bound = device.next_event_cycle(5);
  EXPECT_NE(bound, kNeverCycle);
  EXPECT_GE(bound, 5u);
  // Ticking exactly at the bound (and never before) must complete the
  // request without losing cycles of progress.
  Cycle now = 5;
  std::vector<DeviceResponse> responses;
  while (device.idle() == false && now < 100'000) {
    now = device.next_event_cycle(now);
    ASSERT_NE(now, kNeverCycle);
    device.tick(now);
    for (auto& resp : device.drain_completed()) responses.push_back(resp);
    ++now;
  }
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 1u);
}

TEST(NextEventCycle, DirectControllerIsPurelyDemandDriven) {
  PowerModel power;
  HmcConfig hcfg;
  HmcDevice device(hcfg, &power);
  DevicePort port(&device, RetryConfig{}, /*tracking=*/false);
  DirectController direct(DirectControllerConfig{}, &port);
  EXPECT_EQ(direct.next_event_cycle(0), kNeverCycle);
  MemRequest req;
  req.id = 1;
  req.paddr = 0x1000;
  ASSERT_TRUE(direct.accept(req, 0));
  // Dispatch happened inside accept(); tick() still has nothing to do.
  EXPECT_EQ(direct.next_event_cycle(1), kNeverCycle);
}

TEST(NextEventCycle, MshrDmcWakesOnlyForUndispatchedEntries) {
  PowerModel power;
  HmcConfig hcfg;
  HmcDevice device(hcfg, &power);
  DevicePort port(&device, RetryConfig{}, /*tracking=*/false);
  MshrDmc mshr(MshrDmcConfig{}, &port);
  EXPECT_EQ(mshr.next_event_cycle(0), kNeverCycle);
  MemRequest req;
  req.id = 1;
  req.paddr = 0x2000;
  ASSERT_TRUE(mshr.accept(req, 0));
  // accept() dispatches immediately when the device can take the request,
  // so an idle-device accept leaves no scheduled work either way: either
  // the entry dispatched (demand-driven) or it waits on device space
  // (complete() will wake it).
  const Cycle bound = mshr.next_event_cycle(1);
  EXPECT_TRUE(bound == kNeverCycle || bound == 1u);
}

TEST(NextEventCycle, SortingCoalescerReportsWindowTimeout) {
  PowerModel power;
  HmcConfig hcfg;
  HmcDevice device(hcfg, &power);
  DevicePort port(&device, RetryConfig{}, /*tracking=*/false);
  SortingCoalescerConfig cfg;
  SortingCoalescer sorting(cfg, &port);
  EXPECT_EQ(sorting.next_event_cycle(0), kNeverCycle);
  MemRequest req;
  req.id = 1;
  req.paddr = 0x3000;
  ASSERT_TRUE(sorting.accept(req, 5));
  // One buffered entry: the partial window sorts when the oldest entry
  // times out, at arrived + timeout.
  EXPECT_EQ(sorting.next_event_cycle(6), Cycle{5 + cfg.timeout});
  // A full window is due immediately.
  for (std::uint64_t i = 1; i < cfg.window; ++i) {
    MemRequest more;
    more.id = 1 + i;
    more.paddr = 0x3000 + i * 64;
    ASSERT_TRUE(sorting.accept(more, 6));
  }
  EXPECT_EQ(sorting.next_event_cycle(7), 7u);
}

TEST(NextEventCycle, PacIdleIsDemandDrivenWithSampleTimerReplay) {
  PowerModel power;
  HmcConfig hcfg;
  HmcDevice device(hcfg, &power);
  DevicePort port(&device, RetryConfig{}, /*tracking=*/false);
  PacConfig cfg;
  cfg.enable_bypass_controller = false;  // isolate the aggregator deadline
  Pac pac(cfg, &port);
  pac.tick(0);
  // No active streams: every occupancy-sample firing is a pure re-arm
  // (replayed by fast_forward_to), so idle PAC imposes no bound.
  EXPECT_EQ(pac.next_event_cycle(1), kNeverCycle);
  // Replaying skipped firings must record nothing; the grid identity of
  // samples taken after a skip is covered by the differential suite above.
  pac.fast_forward_to(1000);
  pac.tick(1000);
  EXPECT_TRUE(pac.pac_stats().stream_occupancy.buckets().empty());
  EXPECT_EQ(pac.next_event_cycle(1001), kNeverCycle);
}

TEST(NextEventCycle, AggregatorDeadlineIsOldestStreamTimeout) {
  PacConfig cfg;
  PacStats stats;
  RequestAggregator aggregator(cfg, &stats);
  EXPECT_EQ(aggregator.next_flush_deadline(0), kNeverCycle);
  MemRequest req;
  req.id = 1;
  req.paddr = 0x4000;
  ASSERT_EQ(aggregator.insert(req, 10),
            RequestAggregator::InsertResult::kAllocated);
  EXPECT_EQ(aggregator.next_flush_deadline(11), Cycle{10 + cfg.timeout});
  // Force-flushed streams are due right now.
  aggregator.force_flush_all();
  EXPECT_EQ(aggregator.next_flush_deadline(12), 12u);
}

}  // namespace
}  // namespace pacsim
