// Resilience-layer tests: the deterministic FaultInjector, the HMC NACK /
// response-drop paths, the DevicePort retry buffer (backoff, timeout,
// spurious-timeout re-arm, max-retries abort), and full-system properties -
// fault-free bit-identity, per-seed reproducibility, fast-forward
// equivalence under faults, and lossless completion (no request lost or
// duplicated) for every coalescer including fence/atomic flush paths.
#include "core/fault_injector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "hmc/device_port.hpp"
#include "hmc/hmc_device.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"

namespace pacsim {
namespace {

// ---------------------------------------------------------------------------
// FaultInjector unit tests

TEST(FaultInjector, DefaultConfigIsDisabled) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  FaultConfig cfg;
  cfg.link_error_rate = 1e-6;
  EXPECT_TRUE(cfg.enabled());
}

TEST(FaultInjector, ZeroRatesNeverFire) {
  FaultInjector inj{FaultConfig{}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.corrupt_request());
    EXPECT_FALSE(inj.drop_response());
    EXPECT_FALSE(inj.stall_vault());
  }
  EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(FaultInjector, DecisionSequenceIsDeterministicPerSeed) {
  FaultConfig cfg;
  cfg.link_error_rate = 0.5;
  cfg.response_drop_rate = 0.25;
  FaultInjector a(cfg), b(cfg);
  bool diverged_from_c = false;
  cfg.seed ^= 0xDEADBEEFULL;
  FaultInjector c(cfg);
  for (int i = 0; i < 500; ++i) {
    const bool fa = a.corrupt_request();
    EXPECT_EQ(fa, b.corrupt_request()) << "draw " << i;
    if (fa != c.corrupt_request()) diverged_from_c = true;
    EXPECT_EQ(a.drop_response(), b.drop_response()) << "draw " << i;
  }
  EXPECT_EQ(a.stats().link_errors, b.stats().link_errors);
  EXPECT_EQ(a.stats().response_drops, b.stats().response_drops);
  EXPECT_GT(a.stats().link_errors, 0u);
  EXPECT_TRUE(diverged_from_c) << "different seeds produced the same stream";
}

TEST(FaultInjector, DisabledCategoryDoesNotPerturbOthers) {
  // drop_response at rate 0 must not consume RNG draws, so interleaving it
  // leaves the link-error decision stream untouched.
  FaultConfig cfg;
  cfg.link_error_rate = 0.5;
  FaultInjector plain(cfg), interleaved(cfg);
  for (int i = 0; i < 300; ++i) {
    EXPECT_FALSE(interleaved.drop_response());
    EXPECT_EQ(plain.corrupt_request(), interleaved.corrupt_request())
        << "draw " << i;
  }
}

TEST(FaultInjector, BurstExtendsEachFault) {
  FaultConfig cfg;
  cfg.link_error_rate = 0.05;
  cfg.burst_length = 4;
  FaultInjector inj(cfg);
  int checked_bursts = 0;
  for (int i = 0; i < 2000 && checked_bursts < 3; ++i) {
    if (inj.corrupt_request()) {
      // A fresh fault arms the next burst_length - 1 decisions.
      EXPECT_TRUE(inj.corrupt_request());
      EXPECT_TRUE(inj.corrupt_request());
      EXPECT_TRUE(inj.corrupt_request());
      ++checked_bursts;
    }
  }
  EXPECT_EQ(checked_bursts, 3) << "rate 0.05 never fired in 2000 draws";
  EXPECT_EQ(inj.stats().link_errors % 4, 0u);
}

// ---------------------------------------------------------------------------
// HmcDevice fault paths

DeviceRequest make_req(std::uint64_t id, Addr base = 0,
                       std::uint32_t bytes = 64) {
  DeviceRequest r;
  r.id = id;
  r.base = base;
  r.bytes = bytes;
  r.raw_ids = {id * 100};
  return r;
}

TEST(HmcDeviceFaults, CertainCorruptionNacksInsteadOfCompleting) {
  FaultConfig fcfg;
  fcfg.link_error_rate = 1.0;
  FaultInjector fault(fcfg);
  HmcConfig cfg;
  PowerModel power;
  HmcDevice device(cfg, &power, &fault);

  Cycle now = 0;
  device.submit(make_req(7), now);
  std::vector<DeviceNack> nacks;
  for (; !device.idle() && now < 100'000; ++now) {
    device.tick(now);
    EXPECT_TRUE(device.drain_completed().empty());
  }
  device.drain_nacks_into(nacks);
  ASSERT_EQ(nacks.size(), 1u);
  EXPECT_EQ(nacks[0].request_id, 7u);
  EXPECT_TRUE(device.idle());
  // A NACKed packet never reaches a vault: it is not an accepted request.
  EXPECT_EQ(device.stats().requests, 0u);
  EXPECT_EQ(fault.stats().link_errors, 1u);
}

TEST(HmcDeviceFaults, CertainDropLosesTheResponseButRetires) {
  FaultConfig fcfg;
  fcfg.response_drop_rate = 1.0;
  FaultInjector fault(fcfg);
  HmcConfig cfg;
  PowerModel power;
  HmcDevice device(cfg, &power, &fault);

  Cycle now = 0;
  device.submit(make_req(3), now);
  std::size_t responses = 0;
  for (; !device.idle() && now < 100'000; ++now) {
    device.tick(now);
    responses += device.drain_completed().size();
  }
  EXPECT_TRUE(device.idle()) << "drop must retire the request internally";
  EXPECT_EQ(responses, 0u);
  EXPECT_EQ(fault.stats().response_drops, 1u);
}

TEST(HmcDeviceFaults, VaultStallsOnlyAddLatency) {
  // Rate < 1: a stalled dispatch retries and the re-roll eventually lets
  // it through (rate 1.0 would legitimately starve the vault forever).
  FaultConfig fcfg;
  fcfg.vault_stall_rate = 0.5;
  fcfg.vault_stall_cycles = 32;
  FaultInjector fault(fcfg);
  HmcConfig cfg;
  PowerModel power;
  HmcDevice stalled(cfg, &power, &fault);
  HmcDevice clean(cfg, &power);

  const auto run_one = [](HmcDevice& d) {
    Cycle now = 0;
    std::size_t responses = 0;
    for (std::uint64_t id = 1; id <= 20; ++id) {
      while (!d.can_accept()) {
        d.tick(now);
        ++now;
      }
      d.submit(make_req(id, id * 4096), now);
    }
    for (; !d.idle() && now < 1'000'000; ++now) {
      d.tick(now);
      responses += d.drain_completed().size();
    }
    EXPECT_EQ(responses, 20u);
    return now;
  };
  const Cycle slow = run_one(stalled);
  const Cycle fast = run_one(clean);
  EXPECT_GT(fault.stats().vault_stalls, 0u);
  EXPECT_GT(slow, fast);
}

// ---------------------------------------------------------------------------
// DevicePort retry buffer

struct PortHarness {
  FaultConfig fcfg;
  RetryConfig rcfg;
  PowerModel power;
  std::unique_ptr<FaultInjector> fault;
  std::unique_ptr<HmcDevice> device;
  std::unique_ptr<DevicePort> port;

  void build(bool tracking = true) {
    fault = fcfg.enabled() ? std::make_unique<FaultInjector>(fcfg) : nullptr;
    device = std::make_unique<HmcDevice>(HmcConfig{}, &power, fault.get());
    port = std::make_unique<DevicePort>(device.get(), rcfg, tracking);
  }

  /// Submit `n` requests (respecting back-pressure) and run to idle;
  /// returns the completed request ids.
  std::vector<std::uint64_t> run(std::size_t n, Cycle limit = 4'000'000) {
    std::vector<std::uint64_t> done;
    std::vector<DeviceResponse> buf;
    Cycle now = 0;
    std::uint64_t next = 1;
    while (now < limit && !(next > n && device->idle() && port->idle())) {
      device->tick(now);
      port->tick(now);
      port->drain_completed_into(buf);
      for (const DeviceResponse& r : buf) done.push_back(r.request_id);
      if (next <= n && port->can_accept()) {
        port->submit(make_req(next, next * 4096), now);
        ++next;
      }
      ++now;
    }
    EXPECT_LT(now, limit) << "port never drained";
    return done;
  }
};

TEST(DevicePort, BackoffDoublesUntilTheCap) {
  EXPECT_EQ(backoff_cycles(64, 0, 1 << 20), 64u);
  EXPECT_EQ(backoff_cycles(64, 1, 1 << 20), 128u);
  EXPECT_EQ(backoff_cycles(64, 4, 1 << 20), 1024u);
  EXPECT_EQ(backoff_cycles(64, 14, 1 << 20), Cycle{1} << 20);  // exact cap
  EXPECT_EQ(backoff_cycles(64, 15, 1 << 20), Cycle{1} << 20);  // saturated
  EXPECT_EQ(backoff_cycles(0, 3, 1 << 20), 8u);  // zero base acts as one
  EXPECT_EQ(backoff_cycles(100, 2, 50), 100u);   // cap never below base
}

TEST(DevicePort, BackoffSaturatesPastTheShiftWidth) {
  // attempts is unbounded under a long fault storm; a naive `base << n`
  // is undefined at n >= 64 and wraps to garbage before that. Every point
  // past the cap must return exactly the cap, never 0 or a wrapped value.
  for (const std::uint32_t attempts : {20u, 63u, 64u, 65u, 1000u}) {
    EXPECT_EQ(backoff_cycles(64, attempts, 1 << 20), Cycle{1} << 20)
        << "attempts=" << attempts;
  }
  // Adversarially large base: one doubling would overflow 64 bits.
  const Cycle huge = Cycle{1} << 63;
  EXPECT_EQ(backoff_cycles(huge, 0, 1 << 20), huge);
  EXPECT_EQ(backoff_cycles(huge, 1, 1 << 20), huge);   // saturates, no wrap
  EXPECT_EQ(backoff_cycles(huge, 200, 1 << 20), huge);
}

TEST(DevicePort, PassthroughIsInvisible) {
  PortHarness h;
  h.build(/*tracking=*/false);
  const auto done = h.run(20);
  EXPECT_EQ(done.size(), 20u);
  EXPECT_EQ(h.port->stats().retransmissions, 0u);
  EXPECT_EQ(h.port->next_event_cycle(0), kNeverCycle);
  EXPECT_TRUE(h.port->idle());
}

TEST(DevicePort, RecoversEveryNackedRequest) {
  PortHarness h;
  h.fcfg.link_error_rate = 0.5;
  h.build();
  const auto done = h.run(50);
  std::set<std::uint64_t> unique(done.begin(), done.end());
  EXPECT_EQ(done.size(), 50u) << "a response was lost or duplicated";
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_GT(h.port->stats().nacks, 0u);
  EXPECT_GE(h.port->stats().retransmissions, h.port->stats().nacks);
  EXPECT_GT(h.port->stats().max_retry_depth, 0u);
}

TEST(DevicePort, RecoversEveryDroppedResponseViaTimeout) {
  PortHarness h;
  h.fcfg.response_drop_rate = 0.5;
  h.rcfg.response_timeout = 512;  // well above the unloaded device latency
  h.rcfg.max_retries = 32;  // at drop rate 0.5 a request can lose several
                            // responses in a row; recovery, not abort
  h.build();
  const auto done = h.run(30);
  std::set<std::uint64_t> unique(done.begin(), done.end());
  EXPECT_EQ(done.size(), 30u);
  EXPECT_EQ(unique.size(), 30u);
  EXPECT_GT(h.port->stats().timeout_fires, 0u);
  EXPECT_GE(h.port->stats().retransmissions, h.port->stats().timeout_fires);
}

TEST(DevicePort, SpuriousTimeoutRearmsWithoutRetransmit) {
  PortHarness h;
  h.rcfg.response_timeout = 4;  // far below the device's ~50-cycle latency
  h.build(/*tracking=*/true);   // tracking without faults: timers only
  const auto done = h.run(5);
  EXPECT_EQ(done.size(), 5u);
  EXPECT_GT(h.port->stats().spurious_timeouts, 0u);
  EXPECT_EQ(h.port->stats().retransmissions, 0u);
  EXPECT_EQ(h.port->stats().timeout_fires, 0u);
}

TEST(DevicePort, ExhaustedRetriesThrow) {
  PortHarness h;
  h.fcfg.link_error_rate = 1.0;  // the link never recovers
  h.rcfg.max_retries = 3;
  h.rcfg.backoff_base = 2;
  h.build();
  EXPECT_THROW(h.run(1), std::runtime_error);
  EXPECT_GT(h.port->stats().max_retry_depth, h.rcfg.max_retries);
}

TEST(DevicePort, NextEventCycleTracksPendingTimers) {
  PortHarness h;
  h.fcfg.response_drop_rate = 1.0;
  h.rcfg.response_timeout = 1000;
  h.rcfg.max_retries = 1;
  h.build();
  Cycle now = 0;
  h.port->submit(make_req(1), now);
  // With a request pending, the port must never report kNeverCycle: the
  // response deadline is a real future event the fast-forwarder has to
  // respect (jumping past it would freeze the retry protocol).
  const Cycle bound = h.port->next_event_cycle(now);
  EXPECT_NE(bound, kNeverCycle);
  EXPECT_GE(bound, now);
  EXPECT_LE(bound, now + 1000);
}

// ---------------------------------------------------------------------------
// Full-system resilience properties

WorkloadConfig tiny_wcfg() {
  WorkloadConfig wcfg;
  wcfg.num_cores = 2;
  wcfg.max_ops_per_core = 2000;
  wcfg.scale = 0.25;
  return wcfg;
}

FaultConfig lively_faults() {
  FaultConfig f;
  f.link_error_rate = 2e-2;
  f.response_drop_rate = 5e-3;
  f.vault_stall_rate = 1e-2;
  return f;
}

std::string run_json(const SystemConfig& cfg) {
  const RunResult r =
      run_suite(*find_workload("stream"), cfg.coalescer, tiny_wcfg(), cfg);
  return run_report_json("run", cfg.coalescer, r,
                         /*include_throughput=*/false);
}

TEST(SystemResilience, FaultFreeRunIgnoresRetryConfig) {
  // With injection disabled the port is a passthrough: retry knobs must
  // not influence a single bit of the result.
  SystemConfig base;
  base.coalescer = CoalescerKind::kPac;
  SystemConfig tweaked = base;
  tweaked.retry.response_timeout = 1;
  tweaked.retry.max_retries = 1;
  tweaked.retry.backoff_base = 1;
  EXPECT_EQ(run_json(base), run_json(tweaked));
}

TEST(SystemResilience, FaultPatternIsReproduciblePerSeed) {
  SystemConfig cfg;
  cfg.coalescer = CoalescerKind::kPac;
  cfg.fault = lively_faults();
  const std::string a = run_json(cfg);
  const std::string b = run_json(cfg);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"resilience\""), std::string::npos);

  cfg.fault.seed ^= 0x5EEDULL;
  EXPECT_NE(run_json(cfg), a) << "fault seed had no effect";
}

TEST(SystemResilience, FastForwardIsExactUnderFaults) {
  // The event-horizon jumps must respect pending retry timers: both modes
  // inject the identical fault pattern and agree on every metric.
  SystemConfig ff;
  ff.coalescer = CoalescerKind::kPac;
  ff.fault = lively_faults();
  SystemConfig naive = ff;
  naive.enable_fast_forward = false;
  EXPECT_EQ(run_json(ff), run_json(naive));
}

class ResilientCoalescer : public ::testing::TestWithParam<CoalescerKind> {};

TEST_P(ResilientCoalescer, CompletesLosslesslyUnderFaults) {
  SystemConfig cfg;
  cfg.coalescer = GetParam();
  cfg.num_cores = 2;
  cfg.max_cycles = 50'000'000;
  // Prefetch volume adapts to timing, which faults perturb by design; turn
  // it off so the raw request count is a timing-independent invariant.
  cfg.enable_prefetch = false;
  SystemConfig faulty = cfg;
  faulty.fault = lively_faults();

  const auto run_one = [](const SystemConfig& c) {
    System sys(c);
    // Disjoint per-core ranges of once-touched lines: every access is a
    // cold miss, so the raw stream cannot depend on cross-core timing.
    for (std::uint32_t core = 0; core < 2; ++core) {
      Trace t;
      const Addr base = 0x10000000 + core * 0x10000000ULL;
      for (int i = 0; i < 1500; ++i) {
        t.push_back({base + static_cast<Addr>(i) * 64, 8,
                     i % 5 == 0 ? OpKind::kStore : OpKind::kLoad});
      }
      sys.load_trace(core, t);
    }
    return sys.run();
  };
  const RunResult clean = run_one(cfg);
  const RunResult faulted = run_one(faulty);

  // Retransmission changes timing, never semantics: the same raw request
  // stream reaches the device and every request is answered exactly once
  // (the run draining at all proves nothing was lost; equality of the
  // raw counters proves nothing was dropped or double-counted).
  EXPECT_EQ(faulted.coal.raw_requests, clean.coal.raw_requests);
  // A dropped response makes the device accept the retransmit as a second
  // request, so the device-side count can only exceed the issued count.
  EXPECT_GE(faulted.hmc.requests, faulted.coal.issued_requests);
  EXPECT_TRUE(faulted.resilience.enabled);
  EXPECT_GT(faulted.resilience.fault.total(), 0u);
  EXPECT_EQ(faulted.resilience.retry.retransmissions,
            faulted.resilience.retry.nacks +
                faulted.resilience.retry.timeout_fires);
  EXPECT_GE(faulted.cycles, clean.cycles);
}

TEST_P(ResilientCoalescer, FencesAndAtomicsFlushUnderFaults) {
  SystemConfig cfg;
  cfg.coalescer = GetParam();
  cfg.num_cores = 1;
  cfg.max_cycles = 50'000'000;
  cfg.fault = lively_faults();

  System sys(cfg);
  Trace t;
  for (int i = 0; i < 400; ++i) {
    t.push_back({0x20000000 + static_cast<Addr>(i) * 64, 8, OpKind::kStore});
    if (i % 50 == 49) t.push_back({0, 0, OpKind::kFence});
    if (i % 100 == 99) {
      t.push_back({0x30000000 + static_cast<Addr>(i) * 4096, 8,
                   OpKind::kAtomic});
    }
  }
  sys.load_trace(0, t);
  const RunResult r = sys.run();
  // The fence flush path must tolerate NACK/timeout recovery of the very
  // stores it is waiting on, and atomics (always bypass/uncoalesced) must
  // survive their own retransmissions.
  EXPECT_EQ(r.coal.atomics, 4u);
  EXPECT_GT(r.coal.raw_requests, 0u);
  EXPECT_TRUE(r.resilience.enabled);
  if (GetParam() == CoalescerKind::kPac) {
    EXPECT_EQ(r.pac.base.fences, 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ResilientCoalescer,
                         ::testing::Values(CoalescerKind::kDirect,
                                           CoalescerKind::kMshrDmc,
                                           CoalescerKind::kSortingDmc,
                                           CoalescerKind::kPac),
                         [](const auto& info) {
                           std::string n(to_string(info.param));
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(SystemResilience, CancelFlagAbortsTheRun) {
  SystemConfig cfg;
  cfg.coalescer = CoalescerKind::kPac;
  cfg.num_cores = 1;
  std::atomic<bool> cancel{true};
  cfg.cancel = &cancel;
  System sys(cfg);
  Trace t;
  for (int i = 0; i < 100; ++i) {
    t.push_back({0x1000 + static_cast<Addr>(i) * 64, 8, OpKind::kLoad});
  }
  sys.load_trace(0, t);
  EXPECT_THROW(sys.run(), std::runtime_error);
}

}  // namespace
}  // namespace pacsim
