#include "pac/adaptive_mshr.hpp"

#include <gtest/gtest.h>

namespace pacsim {
namespace {

DeviceRequest dev(std::uint64_t id, Addr base, std::uint32_t bytes,
                  bool store = false,
                  std::initializer_list<std::uint64_t> raws = {}) {
  DeviceRequest r;
  r.id = id;
  r.base = base;
  r.bytes = bytes;
  r.store = store;
  r.raw_ids = raws;
  return r;
}

struct MshrTest : ::testing::Test {
  PacConfig cfg;
  AdaptiveMshrFile file{cfg};
  std::uint64_t comparisons = 0;
};

TEST_F(MshrTest, AllocateAndRelease) {
  file.allocate(dev(7, 0x1000, 256, false, {1, 2}));
  EXPECT_EQ(file.occupied(), 1u);
  EXPECT_FALSE(file.all_occupied());
  const auto raws = file.on_response(7);
  EXPECT_EQ(raws, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_TRUE(file.empty());
}

TEST_F(MshrTest, UnknownResponseIsEmpty) {
  EXPECT_TRUE(file.on_response(999).empty());
}

TEST_F(MshrTest, CapacityTracking) {
  for (std::uint32_t i = 0; i < cfg.num_mshrs; ++i) {
    ASSERT_TRUE(file.has_free());
    file.allocate(dev(i + 1, i * 0x1000, 64));
  }
  EXPECT_TRUE(file.all_occupied());
  EXPECT_FALSE(file.has_free());
  file.on_response(1);
  EXPECT_TRUE(file.has_free());
}

TEST_F(MshrTest, MergeContainedLoad) {
  file.allocate(dev(1, 0x1000, 256));
  EXPECT_TRUE(file.try_merge(dev(2, 0x1040, 64, false, {42}), &comparisons));
  EXPECT_EQ(comparisons, 1u);
  const auto raws = file.on_response(1);
  ASSERT_EQ(raws.size(), 1u);
  EXPECT_EQ(raws[0], 42u);
}

TEST_F(MshrTest, NoMergeOutsideRange) {
  file.allocate(dev(1, 0x1000, 128));
  EXPECT_FALSE(file.try_merge(dev(2, 0x1080, 64), &comparisons));
  EXPECT_FALSE(file.try_merge(dev(3, 0x0FC0, 64), &comparisons));
  // Straddling the end of the entry is also not contained.
  EXPECT_FALSE(file.try_merge(dev(4, 0x1040, 128), &comparisons));
}

TEST_F(MshrTest, OpBitBlocksLoadStoreMerge) {
  // Section 3.1.3: the OP bit rides with the address comparison; loads and
  // stores never merge.
  file.allocate(dev(1, 0x1000, 256, /*store=*/true));
  EXPECT_FALSE(file.try_merge(dev(2, 0x1000, 64, false), &comparisons));
  file.allocate(dev(3, 0x2000, 256, false));
  EXPECT_FALSE(file.try_merge(dev(4, 0x2000, 64, true), &comparisons));
}

TEST_F(MshrTest, AtomicsNeverMerge) {
  DeviceRequest a = dev(1, 0x1000, 64);
  a.atomic = true;
  file.allocate(a);
  EXPECT_FALSE(file.try_merge(dev(2, 0x1000, 16), &comparisons));
}

TEST_F(MshrTest, SubentryIndexDerivation) {
  // Section 3.1.3: indexes 00..11 name blocks N..N+3 of the entry.
  EXPECT_EQ(subentry_index(0x1000, 0x1000, 64), 0);
  EXPECT_EQ(subentry_index(0x1000, 0x1040, 64), 1);
  EXPECT_EQ(subentry_index(0x1000, 0x1080, 64), 2);
  EXPECT_EQ(subentry_index(0x1000, 0x10C0, 64), 3);
}

TEST_F(MshrTest, MergeRecordsSubentryIndex) {
  file.allocate(dev(1, 0x1000, 256));
  ASSERT_TRUE(file.try_merge(dev(2, 0x10C0, 64, false, {9}), &comparisons));
  const AdaptiveMshrEntry* entry = nullptr;
  for (const auto& e : file.entries()) {
    if (e.valid) entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->subentries.size(), 1u);
  EXPECT_EQ(entry->subentries[0].block_index, 3);
}

TEST_F(MshrTest, MergeStampsPerRawSubentryIndices) {
  // A multi-raw MAQ request absorbed into a wide entry must stamp every
  // subentry with its own block index, not the request base's index.
  file.allocate(dev(1, 0x1000, 256));
  DeviceRequest multi = dev(2, 0x1040, 128);
  multi.add_raw(10, 0);  // 0x1040: block 1 of the entry
  multi.add_raw(11, 1);  // 0x1080: block 2 of the entry
  ASSERT_TRUE(file.try_merge(multi, &comparisons));
  const AdaptiveMshrEntry* entry = nullptr;
  for (const auto& e : file.entries()) {
    if (e.valid) entry = &e;
  }
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->subentries.size(), 2u);
  EXPECT_EQ(entry->subentries[0].raw_id, 10u);
  EXPECT_EQ(entry->subentries[0].block_index, 1);
  EXPECT_EQ(entry->subentries[1].raw_id, 11u);
  EXPECT_EQ(entry->subentries[1].block_index, 2);
}

TEST_F(MshrTest, AllocateStampsPerRawBlockOffsets) {
  DeviceRequest wide = dev(1, 0x2000, 256);
  wide.add_raw(21, 0);
  wide.add_raw(22, 3);
  const AdaptiveMshrEntry& e = file.allocate(wide);
  ASSERT_EQ(e.subentries.size(), 2u);
  EXPECT_EQ(e.subentries[0].block_index, 0);
  EXPECT_EQ(e.subentries[1].block_index, 3);
}

TEST_F(MshrTest, OnResponseReportsCreationCycle) {
  DeviceRequest r = dev(1, 0x1000, 64, false, {5});
  r.created_at = 123;
  file.allocate(r);
  Cycle created = 0;
  (void)file.on_response(1, &created);
  EXPECT_EQ(created, 123u);
}

TEST_F(MshrTest, TryAttachSkipsComparisonAccounting) {
  file.allocate(dev(1, 0x1000, 256));
  EXPECT_TRUE(file.try_attach(dev(2, 0x1000, 64, false, {5})));
  EXPECT_EQ(comparisons, 0u);
}

TEST_F(MshrTest, UndispatchedTracking) {
  AdaptiveMshrEntry& e = file.allocate(dev(1, 0x1000, 64));
  EXPECT_EQ(file.undispatched().size(), 1u);
  e.dispatched = true;
  EXPECT_TRUE(file.undispatched().empty());
}

TEST_F(MshrTest, ComparisonsCountOccupiedEntriesOnly) {
  file.allocate(dev(1, 0x1000, 64));
  file.allocate(dev(2, 0x2000, 64));
  comparisons = 0;
  EXPECT_FALSE(file.try_merge(dev(3, 0x9000, 64), &comparisons));
  EXPECT_EQ(comparisons, 2u);
}

}  // namespace
}  // namespace pacsim
