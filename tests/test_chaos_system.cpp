// System-level chaos coverage: scheduled hard-failure timelines driven
// through full simulations. Fast-forward and threaded-shard differentials
// prove the timeline fires at identical cycles in every execution mode,
// mid-campaign checkpoints restore to byte-identical final reports,
// verify=full stays clean under contained failures (poisoned raws close
// the conservation ledger), mesh route-around keeps availability at 1.0,
// and the degradation integral is integer-exact against the event algebra.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "noc/traffic_gen.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"

namespace pacsim {
namespace {

// Same rationale as the multi-cube suite: force a thread budget so the
// threads=2 cells exercise real fork-join workers on single-CPU hosts.
const int g_forced_thread_budget = [] {
  ::setenv("PACSIM_HW_THREADS", "8", /*overwrite=*/0);
  return 0;
}();

constexpr std::uint32_t kCubes = 4;

std::vector<Trace> chaos_traces(std::uint32_t cores, std::uint32_t ops,
                                std::uint32_t gap_max = 8) {
  TrafficConfig t;
  t.cubes = kCubes;
  t.zipf = 0.6;  // skewed but not degenerate: every cube sees traffic
  t.num_cores = cores;
  t.ops_per_core = ops;
  t.gap_max_cycles = gap_max;
  return generate_traffic(t);
}

SystemConfig chaos_config(Topology topo, std::vector<FaultEvent> timeline) {
  SystemConfig cfg;
  cfg.coalescer = CoalescerKind::kPac;
  cfg.backend = BackendKind::kHmc;
  cfg.num_cores = 4;
  cfg.identity_paging = true;  // cube bits must survive translation
  cfg.max_cycles = 50'000'000;
  cfg.noc.cubes = kCubes;
  cfg.noc.topology = topo;
  cfg.fault.fail_policy = FailPolicy::kContain;
  cfg.fault.timeline = std::move(timeline);
  cfg.verify.level = VerifyLevel::kCounters;
  return cfg;
}

std::vector<std::string> snapshots_in(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".pacsnap") out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    // ckpt-<cycle>.pacsnap: numeric cycle order, not lexicographic.
    auto cycle = [](const std::string& p) {
      const auto base = std::filesystem::path(p).stem().string();
      return std::stoull(base.substr(base.find('-') + 1));
    };
    return cycle(a) < cycle(b);
  });
  return out;
}

std::string report_of(const SystemConfig& cfg, const RunResult& r) {
  return run_report_json("chaos", cfg.coalescer, r,
                         /*include_throughput=*/false);
}

/// A campaign that exercises every event kind: a link flaps (down at 2000,
/// repaired at 6000) and a corner cube dies for good at 9000.
std::vector<FaultEvent> mixed_campaign() {
  return {
      {2000, FaultEventKind::kLinkDown, 0, 1},
      {6000, FaultEventKind::kLinkUp, 0, 1},
      {9000, FaultEventKind::kCubeDown, kCubes - 1, 0},
  };
}

// ---------------------------------------------------------------------------
// Determinism differentials with the timeline active.
// ---------------------------------------------------------------------------

// Event-horizon fast-forwarding must fire scheduled events at the exact
// same cycles as the naive per-cycle loop: the injector's
// next_timeline_cycle() bound clamps every jump. Byte-equality of the full
// report covers the availability integral, MTTR, per-link state, and the
// poisoned-raw ledger.
TEST(ChaosSystem, FastForwardMatchesNaiveUnderFaultTimeline) {
  for (const Topology topo : {Topology::kChain, Topology::kMesh}) {
    SCOPED_TRACE(std::string("topology ") + std::string(to_string(topo)));
    SystemConfig cfg = chaos_config(topo, mixed_campaign());
    const std::vector<Trace> traces = chaos_traces(cfg.num_cores, 800);

    cfg.enable_fast_forward = false;
    const RunResult naive = simulate(cfg, traces);
    cfg.enable_fast_forward = true;
    const RunResult ff = simulate(cfg, traces);

    EXPECT_EQ(report_of(cfg, ff), report_of(cfg, naive));
    ASSERT_TRUE(ff.degradation.enabled);
    EXPECT_EQ(ff.degradation.events_fired, 3u);
    EXPECT_EQ(ff.degradation.first_failure_cycle, 2000u);
    EXPECT_EQ(ff.degradation.repairs, 1u);
    EXPECT_EQ(ff.degradation.repair_cycles_total, 4000u);
    EXPECT_GT(ff.degradation.poisoned_raws, 0u)
        << "the dead cube's traffic must resolve as contained losses";
  }
}

// The epoch-barrier threaded scheduler must observe the same timeline:
// every shard's injector fires the same events in its own clock, and the
// merged report is invariant to the worker-thread count.
TEST(ChaosSystem, ShardedRunIsThreadInvariant) {
  SystemConfig cfg = chaos_config(Topology::kMesh, mixed_campaign());
  cfg.exec.shards = 2;
  cfg.exec.epoch_cycles = 2048;
  const std::vector<Trace> traces = chaos_traces(cfg.num_cores, 800);

  cfg.exec.threads = 2;
  const RunResult threaded = simulate(cfg, traces);
  cfg.exec.threads = 1;
  const RunResult serial = simulate(cfg, traces);

  EXPECT_EQ(report_of(cfg, threaded), report_of(cfg, serial));
  ASSERT_TRUE(threaded.degradation.enabled);
  // Each of the two shards fires the full 3-event campaign in its own
  // clock; ratio metrics stay exact while event counts scale by shards.
  EXPECT_EQ(threaded.degradation.events_fired, 6u);
  EXPECT_EQ(threaded.degradation.repairs, 2u);
  EXPECT_EQ(threaded.degradation.repair_cycles_total, 8000u);
}

// ---------------------------------------------------------------------------
// Mid-campaign checkpoint/restore.
// ---------------------------------------------------------------------------

// Snapshots land between (and after) scheduled events; restoring from the
// middle of the campaign must replay the fired prefix from the FLTI record
// and reproduce the final report byte-for-byte - availability integral,
// link states, and poison ledger included.
TEST(ChaosSystem, MidCampaignCheckpointRestoresByteIdentically) {
  const auto dir_path =
      std::filesystem::path(::testing::TempDir()) / "pacsim_chaos_ckpt";
  std::filesystem::remove_all(dir_path);
  const std::string dir = dir_path.string();

  SystemConfig cfg = chaos_config(Topology::kMesh, mixed_campaign());
  cfg.num_cores = 2;  // one core per shard: frequent quiescent boundaries
  cfg.exec.shards = 2;
  cfg.exec.threads = 2;
  cfg.exec.epoch_cycles = 1024;
  const std::vector<Trace> traces =
      chaos_traces(cfg.num_cores, 600, /*gap_max=*/2500);

  cfg.exec.checkpoint_dir = dir;
  const RunResult full = simulate(cfg, traces);
  const std::vector<std::string> snaps = snapshots_in(dir);
  ASSERT_EQ(snaps.size(), full.exec.checkpoints_written);
  ASSERT_GE(snaps.size(), 2u)
      << "no mid-run quiescent epoch boundary - tune epoch_cycles/trace mix";
  ASSERT_TRUE(full.degradation.enabled);
  ASSERT_EQ(full.degradation.events_fired, 6u)
      << "campaign must complete inside the run for the test to mean much";

  SystemConfig rcfg = cfg;
  rcfg.exec.checkpoint_dir.clear();
  rcfg.exec.restore_path = snaps[snaps.size() / 2];
  const RunResult resumed = simulate(rcfg, traces);

  EXPECT_EQ(report_of(cfg, resumed), report_of(cfg, full));
  EXPECT_EQ(resumed.cycles, full.cycles);
  EXPECT_EQ(resumed.degradation.unit_cycles_lost,
            full.degradation.unit_cycles_lost);
  EXPECT_EQ(resumed.degradation.poisoned_raws,
            full.degradation.poisoned_raws);
  EXPECT_TRUE(resumed.exec.restored);
}

// ---------------------------------------------------------------------------
// Contained failures under full verification.
// ---------------------------------------------------------------------------

// verify=full keeps the complete per-raw ledger; a contained cube-down run
// must close conservation as issued == retired + fences + poisoned, with
// the verifier's poisoned count agreeing with the degradation block's.
TEST(ChaosSystem, FullVerifyClosesLedgerUnderContainedCubeDown) {
  SystemConfig cfg = chaos_config(
      Topology::kChain, {{3000, FaultEventKind::kCubeDown, kCubes - 1, 0}});
  cfg.verify.level = VerifyLevel::kFull;
  const std::vector<Trace> traces = chaos_traces(cfg.num_cores, 700);

  const RunResult r = simulate(cfg, traces);  // throws on any violation
  ASSERT_TRUE(r.verification.enabled);
  EXPECT_GT(r.verification.poisoned, 0u);
  EXPECT_EQ(r.verification.poisoned, r.degradation.poisoned_raws);
  EXPECT_LT(r.degradation.availability(), 1.0);
}

// ---------------------------------------------------------------------------
// Route-around and the degradation integral.
// ---------------------------------------------------------------------------

// Killing the redundant mesh edge (1-3 in the 2x2: cube 3 stays reachable
// via 0->2->3) must trigger a route recompute and nothing else: no
// unreachable shard, no poisoned traffic, availability exactly 1.0.
TEST(ChaosSystem, MeshRouteAroundKeepsFullAvailability) {
  SystemConfig cfg = chaos_config(
      Topology::kMesh, {{2500, FaultEventKind::kLinkDown, 1, 3}});
  const std::vector<Trace> traces = chaos_traces(cfg.num_cores, 700);

  const RunResult r = simulate(cfg, traces);
  ASSERT_TRUE(r.has_noc);
  EXPECT_GE(r.noc.route_recomputes, 1u);
  ASSERT_TRUE(r.degradation.enabled);
  EXPECT_EQ(r.degradation.events_fired, 1u);
  EXPECT_EQ(r.degradation.poisoned_raws, 0u);
  EXPECT_EQ(r.degradation.unit_cycles_lost, 0u);
  EXPECT_EQ(r.degradation.availability(), 1.0);
  // The dead link itself must be reported down.
  bool saw_dead_link = false;
  for (const auto& link : r.noc.links) saw_dead_link |= !link.up;
  EXPECT_TRUE(saw_dead_link);
}

// The availability integral is exact integer arithmetic: with one cube
// (1/kCubes of the vault capacity) dead from cycle D to the end E, the
// loss satisfies lost * capacity == dead_units * (total - capacity * D)
// where total = capacity * E. Cross-multiplied form avoids any division.
TEST(ChaosSystem, DegradationIntegralIsIntegerExact) {
  constexpr Cycle kDown = 4000;
  SystemConfig cfg = chaos_config(
      Topology::kChain, {{kDown, FaultEventKind::kCubeDown, kCubes - 1, 0}});
  const std::vector<Trace> traces = chaos_traces(cfg.num_cores, 700);

  const RunResult r = simulate(cfg, traces);
  const DegradationStats& d = r.degradation;
  ASSERT_TRUE(d.enabled);
  ASSERT_GT(d.capacity_units, 0u);
  ASSERT_EQ(d.capacity_units % kCubes, 0u);
  const std::uint64_t dead_units = d.capacity_units / kCubes;
  ASSERT_GT(d.unit_cycles_total, d.capacity_units * kDown)
      << "run ended before the scheduled event - raise ops";
  EXPECT_EQ(d.unit_cycles_lost * d.capacity_units,
            dead_units * (d.unit_cycles_total - d.capacity_units * kDown));
}

}  // namespace
}  // namespace pacsim
