// Unit tests for the pluggable memory backends: the factory, the HBM
// open-page stack and the DDR-lite FR-FCFS channel model, including their
// next_event_cycle() lower bounds and fault-injection surfaces.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "hmc/backend_factory.hpp"
#include "hmc/ddr_device.hpp"
#include "hmc/hbm_device.hpp"
#include "hmc/hmc_device.hpp"

namespace pacsim {
namespace {

DeviceRequest make_req(std::uint64_t id, Addr base,
                       std::uint32_t bytes = 64) {
  DeviceRequest r;
  r.id = id;
  r.base = base;
  r.bytes = bytes;
  r.add_raw(1000 + id);
  return r;
}

/// Event-driven run to idle: tick only at the device's own lower bounds.
/// Returns the responses in completion order.
std::vector<DeviceResponse> run_to_idle(MemoryBackend& device, Cycle start,
                                        Cycle limit = 1'000'000) {
  std::vector<DeviceResponse> all;
  std::vector<DeviceResponse> buf;
  Cycle now = start;
  while (!device.idle() && now < limit) {
    now = device.next_event_cycle(now);
    if (now == kNeverCycle) break;
    device.tick(now);
    device.drain_completed_into(buf);
    all.insert(all.end(), buf.begin(), buf.end());
    ++now;
  }
  return all;
}

// ---------------------------------------------------------------------------
// Factory + kind parsing
// ---------------------------------------------------------------------------

TEST(BackendFactory, BuildsEveryKind) {
  PowerModel power;
  const HmcConfig hmc;
  const HbmConfig hbm;
  const DdrConfig ddr;
  const auto h = make_backend(BackendKind::kHmc, hmc, hbm, ddr, &power);
  const auto b = make_backend(BackendKind::kHbm, hmc, hbm, ddr, &power);
  const auto d = make_backend(BackendKind::kDdr, hmc, hbm, ddr, &power);
  EXPECT_EQ(h->kind(), BackendKind::kHmc);
  EXPECT_EQ(b->kind(), BackendKind::kHbm);
  EXPECT_EQ(d->kind(), BackendKind::kDdr);
  // Each backend decodes through its own geometry.
  EXPECT_EQ(h->address_map().row_bytes(), hmc.map.row_bytes);
  EXPECT_EQ(b->address_map().row_bytes(), 1024u);
  EXPECT_EQ(d->address_map().row_bytes(), 2048u);
  EXPECT_TRUE(h->idle());
  EXPECT_TRUE(b->idle());
  EXPECT_TRUE(d->idle());
}

TEST(BackendFactory, ParseBackendKind) {
  EXPECT_EQ(parse_backend_kind("hmc"), BackendKind::kHmc);
  EXPECT_EQ(parse_backend_kind("hbm"), BackendKind::kHbm);
  EXPECT_EQ(parse_backend_kind("ddr"), BackendKind::kDdr);
  EXPECT_THROW(parse_backend_kind("hbm3"), std::invalid_argument);
  EXPECT_THROW(parse_backend_kind(""), std::invalid_argument);
  for (BackendKind k :
       {BackendKind::kHmc, BackendKind::kHbm, BackendKind::kDdr}) {
    EXPECT_EQ(parse_backend_kind(std::string(to_string(k))), k);
  }
}

// ---------------------------------------------------------------------------
// HBM backend
// ---------------------------------------------------------------------------

TEST(HbmDevice, CompletesARequestAndCountsTheColdMiss) {
  PowerModel power;
  HbmConfig cfg;
  cfg.enable_refresh = false;
  HbmDevice device(cfg, &power);
  ASSERT_TRUE(device.can_accept());
  device.submit(make_req(1, 0x4000), 0);
  EXPECT_TRUE(device.in_flight(1));
  const auto responses = run_to_idle(device, 0);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 1u);
  EXPECT_EQ(responses[0].raw_ids, std::vector<std::uint64_t>{1001});
  EXPECT_FALSE(device.in_flight(1));
  EXPECT_EQ(device.stats().requests, 1u);
  EXPECT_EQ(device.stats().row_misses, 1u);  // cold bank: activate
  EXPECT_EQ(device.stats().row_hits, 0u);
  // Latency floor: interface in + t_rcd + t_cas + burst + interface out.
  const Cycle burst = 64 / cfg.channel_bytes_per_cycle;
  EXPECT_GE(device.stats().access_latency.min(),
            static_cast<double>(2 * cfg.interface_cycles + cfg.t_rcd +
                                cfg.t_cas + burst));
}

TEST(HbmDevice, SecondAccessToOpenRowIsAHit) {
  PowerModel power;
  HbmConfig cfg;
  cfg.enable_refresh = false;
  HbmDevice device(cfg, &power);
  const AddressMap& map = device.address_map();
  const Addr row_base = map.encode(DramLocation{0, 0, 5});
  device.submit(make_req(1, row_base), 0);
  device.submit(make_req(2, row_base + 64), 0);
  const auto responses = run_to_idle(device, 0);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(device.stats().row_misses, 1u);  // first access activates
  EXPECT_EQ(device.stats().row_hits, 1u);    // second reuses the open row
}

TEST(HbmDevice, RowConflictPaysPrechargeAndIsCounted) {
  PowerModel power;
  HbmConfig cfg;
  cfg.enable_refresh = false;
  HbmDevice device(cfg, &power);
  const AddressMap& map = device.address_map();
  // Same channel, same bank, different rows: head-of-line txn #2 waits for
  // the busy bank (bank_conflicts) and then closes row 5 (row_misses).
  device.submit(make_req(1, map.encode(DramLocation{0, 0, 5})), 0);
  device.submit(make_req(2, map.encode(DramLocation{0, 0, 9})), 0);
  const auto responses = run_to_idle(device, 0);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(device.stats().row_hits, 0u);
  EXPECT_EQ(device.stats().row_misses, 2u);
  EXPECT_GE(device.stats().bank_conflicts, 1u);
  EXPECT_GT(device.stats().conflict_wait_cycles, 0u);
}

TEST(HbmDevice, LargeRequestSpansRowsAcrossChannels) {
  PowerModel power;
  HbmConfig cfg;
  cfg.enable_refresh = false;
  HbmDevice device(cfg, &power);
  // 1 KB-aligned 2 KB request: two row shares on consecutive channels, one
  // response once the last share lands.
  device.submit(make_req(1, 0, 2048), 0);
  const auto responses = run_to_idle(device, 0);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(device.stats().row_accesses, 2u);
  EXPECT_EQ(device.stats().requests, 1u);
}

TEST(HbmDevice, IdleBoundIsRefreshTimerAndRefreshCloses) {
  PowerModel power;
  HbmConfig cfg;
  HbmDevice device(cfg, &power);
  EXPECT_EQ(device.next_event_cycle(0), Cycle{cfg.t_refi});
  EXPECT_EQ(device.next_event_cycle(cfg.t_refi + 3), Cycle{cfg.t_refi + 3});
  device.tick(device.next_event_cycle(0));
  EXPECT_EQ(device.stats().refreshes, 1u);

  HbmConfig norefresh;
  norefresh.enable_refresh = false;
  HbmDevice quiet(norefresh, &power);
  EXPECT_EQ(quiet.next_event_cycle(0), kNeverCycle);
}

// ---------------------------------------------------------------------------
// DDR backend
// ---------------------------------------------------------------------------

TEST(DdrDevice, CompletesARequest) {
  PowerModel power;
  DdrConfig cfg;
  cfg.enable_refresh = false;
  DdrDevice device(cfg, &power);
  device.submit(make_req(1, 0x10000), 0);
  const auto responses = run_to_idle(device, 0);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 1u);
  EXPECT_EQ(device.stats().requests, 1u);
  EXPECT_EQ(device.stats().row_misses, 1u);
  EXPECT_TRUE(device.idle());
}

TEST(DdrDevice, FrFcfsPrefersTheRowHitOverTheOlderConflict) {
  PowerModel power;
  DdrConfig cfg;
  cfg.enable_refresh = false;
  DdrDevice device(cfg, &power);
  const AddressMap& map = device.address_map();
  // All three land in channel 0, bank 0. Age order: #1 (row 2), #2 (row 7),
  // #3 (row 2). A FIFO scheduler would issue 1, 2, 3 and pay two
  // conflicts; FR-FCFS issues the younger row hit #3 ahead of #2.
  device.submit(make_req(1, map.encode(DramLocation{0, 0, 2})), 0);
  device.submit(make_req(2, map.encode(DramLocation{0, 0, 7})), 0);
  device.submit(make_req(3, map.encode(DramLocation{0, 0, 2})), 0);
  const auto responses = run_to_idle(device, 0);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].request_id, 1u);
  EXPECT_EQ(responses[1].request_id, 3u);  // hit bypasses the older miss
  EXPECT_EQ(responses[2].request_id, 2u);
  EXPECT_EQ(device.stats().row_hits, 1u);
  EXPECT_EQ(device.stats().row_misses, 2u);
}

TEST(DdrDevice, SharedBusSerializesBanksOfAChannel) {
  PowerModel power;
  DdrConfig cfg;
  cfg.enable_refresh = false;
  DdrDevice device(cfg, &power);
  const AddressMap& map = device.address_map();
  // Two independent banks of channel 0 issue in parallel, but their bursts
  // share one data bus: the second completion trails the first by at least
  // a burst, never by less.
  device.submit(make_req(1, map.encode(DramLocation{0, 0, 1})), 0);
  device.submit(make_req(2, map.encode(DramLocation{0, 1, 1})), 0);
  const auto responses = run_to_idle(device, 0);
  ASSERT_EQ(responses.size(), 2u);
  const Cycle burst = 64 / cfg.channel_bytes_per_cycle;
  EXPECT_GE(responses[1].completed_at, responses[0].completed_at + burst);
}

TEST(DdrDevice, IdleBoundIsRefreshTimer) {
  PowerModel power;
  DdrConfig cfg;
  DdrDevice device(cfg, &power);
  EXPECT_EQ(device.next_event_cycle(0), Cycle{cfg.t_refi});
  device.tick(device.next_event_cycle(0));
  EXPECT_EQ(device.stats().refreshes, 1u);

  DdrConfig norefresh;
  norefresh.enable_refresh = false;
  DdrDevice quiet(norefresh, &power);
  EXPECT_EQ(quiet.next_event_cycle(0), kNeverCycle);
}

// ---------------------------------------------------------------------------
// Fault-injection surfaces (certain rates make the paths deterministic)
// ---------------------------------------------------------------------------

template <typename Device, typename Config>
void expect_nacks_corrupted_request(Config cfg) {
  cfg.enable_refresh = false;
  PowerModel power;
  FaultConfig fcfg;
  fcfg.link_error_rate = 1.0;
  FaultInjector fault(fcfg);
  Device device(cfg, &power, &fault);
  device.submit(make_req(1, 0x8000), 0);
  const auto responses = run_to_idle(device, 0);
  EXPECT_TRUE(responses.empty());
  std::vector<DeviceNack> nacks;
  device.drain_nacks_into(nacks);
  ASSERT_EQ(nacks.size(), 1u);
  EXPECT_EQ(nacks[0].request_id, 1u);
  EXPECT_FALSE(device.in_flight(1));
  EXPECT_TRUE(device.idle());
  EXPECT_EQ(fault.stats().link_errors, 1u);
}

template <typename Device, typename Config>
void expect_swallows_dropped_response(Config cfg) {
  cfg.enable_refresh = false;
  PowerModel power;
  FaultConfig fcfg;
  fcfg.response_drop_rate = 1.0;
  FaultInjector fault(fcfg);
  Device device(cfg, &power, &fault);
  device.submit(make_req(1, 0x8000), 0);
  const auto responses = run_to_idle(device, 0);
  // The device retires its bookkeeping but the response never surfaces -
  // only the requester-side timeout can recover it.
  EXPECT_TRUE(responses.empty());
  EXPECT_TRUE(device.idle());
  EXPECT_FALSE(device.in_flight(1));
  EXPECT_EQ(fault.stats().response_drops, 1u);
}

TEST(BackendFaults, HbmNacksCorruptedRequests) {
  expect_nacks_corrupted_request<HbmDevice>(HbmConfig{});
}
TEST(BackendFaults, DdrNacksCorruptedRequests) {
  expect_nacks_corrupted_request<DdrDevice>(DdrConfig{});
}
TEST(BackendFaults, HbmSwallowsDroppedResponses) {
  expect_swallows_dropped_response<HbmDevice>(HbmConfig{});
}
TEST(BackendFaults, DdrSwallowsDroppedResponses) {
  expect_swallows_dropped_response<DdrDevice>(DdrConfig{});
}

}  // namespace
}  // namespace pacsim
