#include "mem/address_map.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <tuple>

#include "common/rng.hpp"

namespace pacsim {
namespace {

TEST(AddressMap, ConsecutiveRowsInterleaveAcrossVaults) {
  AddressMap map(AddressMapConfig{});
  // Paper section 4.2: vault interleave first - consecutive 256 B rows land
  // in consecutive vaults.
  for (std::uint32_t i = 0; i < 64; ++i) {
    const DramLocation loc = map.decode(static_cast<Addr>(i) * 256);
    EXPECT_EQ(loc.vault, i % 32);
  }
}

TEST(AddressMap, BankInterleaveAfterVaults) {
  AddressMap map(AddressMapConfig{});
  // After one full sweep of the vaults the bank index advances.
  const DramLocation a = map.decode(0);
  const DramLocation b = map.decode(32ULL * 256);
  EXPECT_EQ(a.vault, b.vault);
  EXPECT_EQ(a.bank + 1, b.bank);
}

TEST(AddressMap, SameRowForAllBytesOfARow) {
  AddressMap map(AddressMapConfig{});
  const DramLocation base = map.decode(4096);
  for (Addr off = 0; off < 256; ++off) {
    EXPECT_EQ(map.decode(4096 + off), base);
  }
}

TEST(AddressMap, CapacityWrap) {
  AddressMapConfig cfg;
  AddressMap map(cfg);
  EXPECT_EQ(map.decode(cfg.capacity_bytes + 512), map.decode(512));
}

TEST(AddressMap, EncodeWrapsOutOfRangeRowInPlace) {
  // Regression test for the row-aliasing bug: encode() used to shift an
  // out-of-range row straight into the index, so row + rows_per_bank bled
  // into high address bits that decode() discards - the round trip landed
  // in a DIFFERENT (vault, bank) than the one encoded. The fix wraps the
  // row modulo rows_per_bank() first, mirroring decode's capacity wrap.
  AddressMap map(AddressMapConfig{});
  const DramLocation in_range{7, 3, 11};
  DramLocation aliased = in_range;
  aliased.row = in_range.row + map.rows_per_bank();
  EXPECT_EQ(map.encode(aliased), map.encode(in_range));
  EXPECT_EQ(map.decode(map.encode(aliased)), in_range);

  // Even a wildly out-of-range row stays inside the same vault and bank.
  aliased.row = in_range.row + 5 * map.rows_per_bank();
  const DramLocation rt = map.decode(map.encode(aliased));
  EXPECT_EQ(rt.vault, in_range.vault);
  EXPECT_EQ(rt.bank, in_range.bank);
  EXPECT_EQ(rt.row, in_range.row);
}

TEST(AddressMap, ConstructorRejectsSubRowCapacity) {
  // 32 vaults x 16 banks x 256 B rows needs at least 128 KB; anything less
  // would leave rows_per_bank() == 0 and every shift/mask meaningless.
  AddressMapConfig cfg;
  cfg.capacity_bytes = 64ULL * 1024;
  EXPECT_THROW(AddressMap{cfg}, std::invalid_argument);

  cfg.capacity_bytes = 128ULL * 1024;  // exactly one row per bank: legal
  const AddressMap minimal{cfg};
  EXPECT_EQ(minimal.rows_per_bank(), 1u);
}

struct MapParam {
  std::uint32_t vaults;
  std::uint32_t banks;
  std::uint32_t row_bytes;
};

class AddressMapRoundTrip : public ::testing::TestWithParam<MapParam> {};

TEST_P(AddressMapRoundTrip, EncodeDecodeRoundTrip) {
  const MapParam p = GetParam();
  AddressMapConfig cfg;
  cfg.num_vaults = p.vaults;
  cfg.banks_per_vault = p.banks;
  cfg.row_bytes = p.row_bytes;
  cfg.capacity_bytes = 1ULL << 30;
  AddressMap map(cfg);

  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const Addr a = (rng.below(cfg.capacity_bytes / p.row_bytes)) * p.row_bytes;
    const DramLocation loc = map.decode(a);
    EXPECT_LT(loc.vault, p.vaults);
    EXPECT_LT(loc.bank, p.banks);
    EXPECT_LT(loc.row, map.rows_per_bank());
    EXPECT_EQ(map.encode(loc), a) << "address " << a;
  }
}

TEST_P(AddressMapRoundTrip, DecodeOfEncodeIsIdentity) {
  const MapParam p = GetParam();
  AddressMapConfig cfg;
  cfg.num_vaults = p.vaults;
  cfg.banks_per_vault = p.banks;
  cfg.row_bytes = p.row_bytes;
  cfg.capacity_bytes = 1ULL << 30;
  AddressMap map(cfg);

  // Location-first property (the dual of EncodeDecodeRoundTrip): for any
  // in-range (vault, bank, row), decode(encode(loc)) == loc. This is the
  // direction the row-aliasing bug broke when the row was near the top of
  // the bank on a remapped shape.
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    DramLocation loc;
    loc.vault = static_cast<std::uint32_t>(rng.below(p.vaults));
    loc.bank = static_cast<std::uint32_t>(rng.below(p.banks));
    loc.row = rng.below(map.rows_per_bank());
    EXPECT_EQ(map.decode(map.encode(loc)), loc)
        << "vault " << loc.vault << " bank " << loc.bank << " row "
        << loc.row;
  }
}

TEST_P(AddressMapRoundTrip, DistinctRowsDistinctLocations) {
  const MapParam p = GetParam();
  AddressMapConfig cfg;
  cfg.num_vaults = p.vaults;
  cfg.banks_per_vault = p.banks;
  cfg.row_bytes = p.row_bytes;
  cfg.capacity_bytes = 1ULL << 26;
  AddressMap map(cfg);
  // Injectivity over a window: different rows never map to the same
  // (vault, bank, row) triple.
  const std::uint64_t window = 4096;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> seen;
  for (std::uint64_t i = 0; i < window; ++i) {
    const DramLocation loc = map.decode(i * p.row_bytes);
    EXPECT_TRUE(seen.insert({loc.vault, loc.bank, loc.row}).second);
  }
}

// --- Multi-cube sharding: the cube index lives above the per-cube
// capacity, so child devices handed the full address stay correct via
// decode()'s capacity wrap. ---------------------------------------------

TEST(AddressMapCubes, CubeBitsSitDirectlyAboveCapacity) {
  AddressMapConfig cfg;
  cfg.capacity_bytes = 1ULL << 26;
  cfg.num_cubes = 4;
  const AddressMap map(cfg);
  EXPECT_EQ(map.num_cubes(), 4u);
  EXPECT_EQ(map.total_capacity_bytes(), 4ULL << 26);
  for (std::uint32_t c = 0; c < 4; ++c) {
    const Addr base = static_cast<Addr>(c) << 26;
    EXPECT_EQ(map.cube_of(base), c);
    EXPECT_EQ(map.cube_of(base + (1ULL << 26) - 1), c);
  }
  // Addresses beyond the last cube wrap modulo the cube count, mirroring
  // the per-cube capacity wrap.
  EXPECT_EQ(map.cube_of(4ULL << 26), 0u);
  EXPECT_EQ(map.cube_of(5ULL << 26), 1u);
}

TEST(AddressMapCubes, DecodeIsCubeLocal) {
  AddressMapConfig cfg;
  cfg.capacity_bytes = 1ULL << 26;
  cfg.num_cubes = 8;
  const AddressMap map(cfg);
  // The same cube-local offset decodes identically in every cube: the cube
  // bits are invisible to the (vault, bank, row) decomposition.
  for (const Addr offset : {Addr{0}, Addr{0x1234C0}, (Addr{1} << 26) - 256}) {
    const DramLocation home = map.decode(offset);
    for (std::uint32_t c = 1; c < 8; ++c) {
      EXPECT_EQ(map.decode((static_cast<Addr>(c) << 26) + offset), home)
          << "cube " << c << " offset " << offset;
    }
  }
}

TEST(AddressMapCubes, SingleCubeIsWholeSpace) {
  AddressMapConfig cfg;
  cfg.capacity_bytes = 1ULL << 26;
  const AddressMap map(cfg);  // num_cubes defaults to 1
  EXPECT_EQ(map.num_cubes(), 1u);
  EXPECT_EQ(map.total_capacity_bytes(), map.capacity_bytes());
  EXPECT_EQ(map.cube_of(0), 0u);
  EXPECT_EQ(map.cube_of(~Addr{0}), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AddressMapRoundTrip,
    ::testing::Values(MapParam{32, 16, 256},   // HMC 2.1 (paper Table 1)
                      MapParam{16, 8, 256},    // HMC 1.0-ish
                      MapParam{8, 16, 1024},   // HBM-style 1 KB rows
                      MapParam{4, 4, 256}, MapParam{64, 2, 128}),
    [](const ::testing::TestParamInfo<MapParam>& info) {
      return "v" + std::to_string(info.param.vaults) + "b" +
             std::to_string(info.param.banks) + "r" +
             std::to_string(info.param.row_bytes);
    });

}  // namespace
}  // namespace pacsim
