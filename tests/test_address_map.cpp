#include "mem/address_map.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.hpp"

namespace pacsim {
namespace {

TEST(AddressMap, ConsecutiveRowsInterleaveAcrossVaults) {
  AddressMap map(AddressMapConfig{});
  // Paper section 4.2: vault interleave first - consecutive 256 B rows land
  // in consecutive vaults.
  for (std::uint32_t i = 0; i < 64; ++i) {
    const DramLocation loc = map.decode(static_cast<Addr>(i) * 256);
    EXPECT_EQ(loc.vault, i % 32);
  }
}

TEST(AddressMap, BankInterleaveAfterVaults) {
  AddressMap map(AddressMapConfig{});
  // After one full sweep of the vaults the bank index advances.
  const DramLocation a = map.decode(0);
  const DramLocation b = map.decode(32ULL * 256);
  EXPECT_EQ(a.vault, b.vault);
  EXPECT_EQ(a.bank + 1, b.bank);
}

TEST(AddressMap, SameRowForAllBytesOfARow) {
  AddressMap map(AddressMapConfig{});
  const DramLocation base = map.decode(4096);
  for (Addr off = 0; off < 256; ++off) {
    EXPECT_EQ(map.decode(4096 + off), base);
  }
}

TEST(AddressMap, CapacityWrap) {
  AddressMapConfig cfg;
  AddressMap map(cfg);
  EXPECT_EQ(map.decode(cfg.capacity_bytes + 512), map.decode(512));
}

struct MapParam {
  std::uint32_t vaults;
  std::uint32_t banks;
  std::uint32_t row_bytes;
};

class AddressMapRoundTrip : public ::testing::TestWithParam<MapParam> {};

TEST_P(AddressMapRoundTrip, EncodeDecodeRoundTrip) {
  const MapParam p = GetParam();
  AddressMapConfig cfg;
  cfg.num_vaults = p.vaults;
  cfg.banks_per_vault = p.banks;
  cfg.row_bytes = p.row_bytes;
  cfg.capacity_bytes = 1ULL << 30;
  AddressMap map(cfg);

  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const Addr a = (rng.below(cfg.capacity_bytes / p.row_bytes)) * p.row_bytes;
    const DramLocation loc = map.decode(a);
    EXPECT_LT(loc.vault, p.vaults);
    EXPECT_LT(loc.bank, p.banks);
    EXPECT_LT(loc.row, map.rows_per_bank());
    EXPECT_EQ(map.encode(loc), a) << "address " << a;
  }
}

TEST_P(AddressMapRoundTrip, DistinctRowsDistinctLocations) {
  const MapParam p = GetParam();
  AddressMapConfig cfg;
  cfg.num_vaults = p.vaults;
  cfg.banks_per_vault = p.banks;
  cfg.row_bytes = p.row_bytes;
  cfg.capacity_bytes = 1ULL << 26;
  AddressMap map(cfg);
  // Injectivity over a window: different rows never map to the same
  // (vault, bank, row) triple.
  const std::uint64_t window = 4096;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> seen;
  for (std::uint64_t i = 0; i < window; ++i) {
    const DramLocation loc = map.decode(i * p.row_bytes);
    EXPECT_TRUE(seen.insert({loc.vault, loc.bank, loc.row}).second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AddressMapRoundTrip,
    ::testing::Values(MapParam{32, 16, 256},   // HMC 2.1 (paper Table 1)
                      MapParam{16, 8, 256},    // HMC 1.0-ish
                      MapParam{8, 16, 1024},   // HBM-style 1 KB rows
                      MapParam{4, 4, 256}, MapParam{64, 2, 128}),
    [](const ::testing::TestParamInfo<MapParam>& info) {
      return "v" + std::to_string(info.param.vaults) + "b" +
             std::to_string(info.param.banks) + "r" +
             std::to_string(info.param.row_bytes);
    });

}  // namespace
}  // namespace pacsim
