// Deterministic sharded execution: differential property tests proving that
// the epoch-barrier scheduler produces bit-identical results at any worker
// thread count (threads=1 vs threads=4 over the same shards), that the
// 1-shard path reproduces the classic System::run() exactly, and that the
// jobs= / threads= oversubscription clamp composes both parallelism layers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/concurrency.hpp"
#include "common/rng.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/sharded_system.hpp"
#include "sim/system.hpp"

namespace pacsim {
namespace {

// Force an 8-thread budget for this whole binary (covers the checkpoint
// suite too): on a single-CPU host the oversubscription clamp would route
// every threads=N run through the serial epoch path, and both the
// differential proof and the thread-sanitizer coverage require the
// fork-join workers to actually exist. Results are thread-count-invariant,
// so widening the budget cannot change any expectation. setenv before main
// (no threads yet), overwrite=0 so an explicit caller setting wins.
const int g_forced_thread_budget = [] {
  ::setenv("PACSIM_HW_THREADS", "8", /*overwrite=*/0);
  return 0;
}();

/// A randomized trace mixing every op kind (same shape as the fast-forward
/// differential suite): sequential load bursts exercise coalescing, long
/// computes create the idle windows epochs and checkpoints land in.
Trace random_trace(Rng& rng, std::size_t ops) {
  Trace t;
  Addr cursor = 0x10000000 + rng.below(8) * 0x400000;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t pick = rng.below(100);
    if (pick < 40) {
      if (rng.below(8) == 0) cursor = 0x10000000 + rng.below(64) * 0x11000;
      t.push_back({cursor, 8, OpKind::kLoad});
      cursor += 64;
    } else if (pick < 55) {
      t.push_back({cursor + rng.below(16) * 64, 8, OpKind::kStore});
    } else if (pick < 58) {
      t.push_back({0x30000000 + rng.below(32) * 4096, 8, OpKind::kAtomic});
    } else if (pick < 60) {
      t.push_back({0, 0, OpKind::kFence});
    } else if (pick < 90) {
      t.push_back({0, 1 + rng.below(8), OpKind::kCompute});
    } else {
      t.push_back({0, 50 + rng.below(400), OpKind::kCompute});
    }
  }
  return t;
}

std::vector<Trace> make_traces(std::uint64_t seed, std::uint32_t cores,
                               std::size_t ops) {
  Rng rng(seed);
  std::vector<Trace> traces;
  traces.reserve(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    traces.push_back(random_trace(rng, ops));
  }
  return traces;
}

SystemConfig base_config(CoalescerKind kind, BackendKind backend) {
  SystemConfig cfg;
  cfg.coalescer = kind;
  cfg.backend = backend;
  cfg.num_cores = 6;
  cfg.record_raw_trace = true;  // captured addresses must match too
  cfg.max_cycles = 50'000'000;
  return cfg;
}

void expect_stat_eq(const RunningStat& a, const RunningStat& b,
                    const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.sum(), b.sum()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

/// Field-by-field identity, including metrics the JSON report omits.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.core_stall_cycles, b.core_stall_cycles);
  EXPECT_EQ(a.l1_hits, b.l1_hits);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
  EXPECT_EQ(a.llc_hits, b.llc_hits);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);

  EXPECT_EQ(a.coal.raw_requests, b.coal.raw_requests);
  EXPECT_EQ(a.coal.coalesced_away, b.coal.coalesced_away);
  EXPECT_EQ(a.coal.issued_requests, b.coal.issued_requests);
  EXPECT_EQ(a.coal.issued_payload_bytes, b.coal.issued_payload_bytes);
  EXPECT_EQ(a.coal.comparisons, b.coal.comparisons);
  EXPECT_EQ(a.coal.atomics, b.coal.atomics);
  EXPECT_EQ(a.coal.fences, b.coal.fences);
  EXPECT_EQ(a.coal.request_size_bytes.buckets(),
            b.coal.request_size_bytes.buckets());

  EXPECT_EQ(a.hmc.requests, b.hmc.requests);
  EXPECT_EQ(a.hmc.row_accesses, b.hmc.row_accesses);
  EXPECT_EQ(a.hmc.bank_conflicts, b.hmc.bank_conflicts);
  EXPECT_EQ(a.hmc.conflict_wait_cycles, b.hmc.conflict_wait_cycles);
  EXPECT_EQ(a.hmc.refreshes, b.hmc.refreshes);
  EXPECT_EQ(a.hmc.row_hits, b.hmc.row_hits);
  EXPECT_EQ(a.hmc.row_misses, b.hmc.row_misses);
  EXPECT_EQ(a.hmc.local_routes, b.hmc.local_routes);
  EXPECT_EQ(a.hmc.remote_routes, b.hmc.remote_routes);
  EXPECT_EQ(a.hmc.request_flits, b.hmc.request_flits);
  EXPECT_EQ(a.hmc.response_flits, b.hmc.response_flits);
  EXPECT_EQ(a.hmc.payload_bytes, b.hmc.payload_bytes);
  expect_stat_eq(a.hmc.access_latency, b.hmc.access_latency,
                 "hmc.access_latency");

  ASSERT_EQ(a.energy.size(), b.energy.size());
  for (std::size_t op = 0; op < a.energy.size(); ++op) {
    EXPECT_EQ(a.energy[op], b.energy[op]) << "energy op " << op;
  }
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.raw_trace, b.raw_trace);

  ASSERT_EQ(a.has_pac, b.has_pac);
  if (a.has_pac) {
    EXPECT_EQ(a.pac.flushed_streams, b.pac.flushed_streams);
    EXPECT_EQ(a.pac.timeout_flushes, b.pac.timeout_flushes);
    EXPECT_EQ(a.pac.fence_flushes, b.pac.fence_flushes);
    EXPECT_EQ(a.pac.mshr_merges, b.pac.mshr_merges);
    EXPECT_EQ(a.pac.stream_occupancy.buckets(),
              b.pac.stream_occupancy.buckets());
    expect_stat_eq(a.pac.stage2_latency, b.pac.stage2_latency,
                   "pac.stage2_latency");
    expect_stat_eq(a.pac.request_latency, b.pac.request_latency,
                   "pac.request_latency");
  }

  ASSERT_EQ(a.verification.enabled, b.verification.enabled);
  if (a.verification.enabled) {
    EXPECT_EQ(a.verification.issued, b.verification.issued);
    EXPECT_EQ(a.verification.retired, b.verification.retired);
    EXPECT_EQ(a.verification.merged, b.verification.merged);
    EXPECT_EQ(a.verification.responses, b.verification.responses);
  }
}

struct ShardCase {
  CoalescerKind kind;
  BackendKind backend = BackendKind::kHmc;
};

class ShardedDifferential : public ::testing::TestWithParam<ShardCase> {};

// The tentpole determinism claim: the same 4-shard run advanced by 4 worker
// threads is bit-identical to advancing it serially, for every controller
// on every substrate.
TEST_P(ShardedDifferential, ThreadedBitIdenticalToSerial) {
  const ShardCase c = GetParam();
  for (std::uint64_t seed : {0x5AADull, 0xC0DEull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SystemConfig cfg = base_config(c.kind, c.backend);
    const std::vector<Trace> traces =
        make_traces(seed, cfg.num_cores, 700);

    cfg.exec.shards = 4;
    cfg.exec.threads = 1;
    const RunResult serial = simulate(cfg, traces);

    cfg.exec.threads = 4;
    const RunResult threaded = simulate(cfg, traces);

    expect_identical(threaded, serial);
    // Byte-equality of the serialized report (the union of everything the
    // benches print); the host-side sim_throughput/execution blocks are
    // wall-clock and thread-count derived, hence excluded.
    EXPECT_EQ(
        run_report_json("d", c.kind, threaded, /*include_throughput=*/false),
        run_report_json("d", c.kind, serial, /*include_throughput=*/false));
    EXPECT_EQ(serial.exec.shards, 4u);
    EXPECT_EQ(serial.exec.threads, 1u);
    // The binary-wide PACSIM_HW_THREADS budget guarantees the request is
    // not clamped: the fork-join worker path genuinely ran. A clamp
    // regression would silently turn this whole suite serial otherwise.
    EXPECT_EQ(threaded.exec.threads, 4u);
    EXPECT_EQ(threaded.exec.threads_requested, 4u);
    EXPECT_GT(threaded.exec.epochs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndBackends, ShardedDifferential,
    ::testing::Values(ShardCase{CoalescerKind::kDirect},
                      ShardCase{CoalescerKind::kMshrDmc},
                      ShardCase{CoalescerKind::kSortingDmc},
                      ShardCase{CoalescerKind::kPac},
                      ShardCase{CoalescerKind::kDirect, BackendKind::kHbm},
                      ShardCase{CoalescerKind::kMshrDmc, BackendKind::kHbm},
                      ShardCase{CoalescerKind::kSortingDmc,
                                BackendKind::kHbm},
                      ShardCase{CoalescerKind::kPac, BackendKind::kHbm},
                      ShardCase{CoalescerKind::kDirect, BackendKind::kDdr},
                      ShardCase{CoalescerKind::kMshrDmc, BackendKind::kDdr},
                      ShardCase{CoalescerKind::kSortingDmc,
                                BackendKind::kDdr},
                      ShardCase{CoalescerKind::kPac, BackendKind::kDdr}),
    [](const auto& info) {
      std::string n(to_string(info.param.kind));
      if (info.param.backend != BackendKind::kHmc) {
        n += "_" + std::string(to_string(info.param.backend));
      }
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

// Shard 0 keeps the original seeds and a single shard owns every core, so
// the 1-shard scheduler must reproduce the classic System path exactly.
TEST(ShardedSystem, OneShardMatchesClassicSystem) {
  SystemConfig cfg = base_config(CoalescerKind::kPac, BackendKind::kHmc);
  const std::vector<Trace> traces = make_traces(0x1111, cfg.num_cores, 700);

  const RunResult classic = simulate(cfg, traces);  // exec defaults: classic

  cfg.exec.shards = 1;
  cfg.exec.threads = 1;
  cfg.exec.epoch_cycles = 10'000;  // force many epochs; must not matter
  const RunResult sharded = simulate(cfg, traces);

  expect_identical(sharded, classic);
  EXPECT_EQ(run_report_json("d", cfg.coalescer, sharded,
                            /*include_throughput=*/false),
            run_report_json("d", cfg.coalescer, classic,
                            /*include_throughput=*/false));
}

// Results are epoch-length-invariant: the barrier grid is pure scheduling.
TEST(ShardedSystem, EpochLengthInvariant) {
  SystemConfig cfg = base_config(CoalescerKind::kMshrDmc, BackendKind::kHmc);
  const std::vector<Trace> traces = make_traces(0x2222, cfg.num_cores, 700);
  cfg.exec.shards = 3;
  cfg.exec.threads = 2;

  cfg.exec.epoch_cycles = 1 << 18;
  const RunResult coarse = simulate(cfg, traces);
  cfg.exec.epoch_cycles = 777;  // odd, tiny: thousands of barriers
  const RunResult fine = simulate(cfg, traces);

  expect_identical(fine, coarse);
  EXPECT_GT(fine.exec.epochs, coarse.exec.epochs);
}

// Verifier counters and fault-injection stats merge deterministically too:
// the full-observability configuration is bit-identical across threads.
TEST(ShardedSystem, VerifiedFaultInjectedRunIsThreadInvariant) {
  SystemConfig cfg = base_config(CoalescerKind::kPac, BackendKind::kHmc);
  cfg.verify.level = VerifyLevel::kCounters;
  cfg.fault.link_error_rate = 2e-3;
  cfg.fault.response_drop_rate = 1e-3;
  const std::vector<Trace> traces = make_traces(0x3333, cfg.num_cores, 700);
  cfg.exec.shards = 4;

  cfg.exec.threads = 1;
  const RunResult serial = simulate(cfg, traces);
  cfg.exec.threads = 4;
  const RunResult threaded = simulate(cfg, traces);

  expect_identical(threaded, serial);
  ASSERT_TRUE(serial.verification.enabled);
  ASSERT_TRUE(serial.resilience.enabled);
  EXPECT_EQ(threaded.resilience.fault.link_errors,
            serial.resilience.fault.link_errors);
  EXPECT_EQ(threaded.resilience.retry.retransmissions,
            serial.resilience.retry.retransmissions);
  EXPECT_EQ(run_report_json("d", cfg.coalescer, threaded,
                            /*include_throughput=*/false),
            run_report_json("d", cfg.coalescer, serial,
                            /*include_throughput=*/false));
}

// Two identical threaded invocations must agree byte-for-byte: the dynamic
// shard-claiming order is irrelevant because shards share no state.
TEST(ShardedSystem, ThreadedRunIsReproducible) {
  SystemConfig cfg = base_config(CoalescerKind::kSortingDmc,
                                 BackendKind::kDdr);
  const std::vector<Trace> traces = make_traces(0x4444, cfg.num_cores, 700);
  cfg.exec.shards = 4;
  cfg.exec.threads = 4;
  const RunResult first = simulate(cfg, traces);
  const RunResult second = simulate(cfg, traces);
  expect_identical(first, second);
}

TEST(ShardedSystem, ShardCountClampsToCores) {
  SystemConfig cfg = base_config(CoalescerKind::kDirect, BackendKind::kHmc);
  cfg.num_cores = 2;
  cfg.exec.shards = 8;  // more shards than cores
  ShardedSystem sys(cfg);
  EXPECT_EQ(sys.shard_count(), 2u);
}

// --- Satellite: jobs= / threads= oversubscription guard. -------------------

TEST(Concurrency, ClampIsIdentityWithoutActiveJobs) {
  // No sweep running: a request within hardware concurrency passes through.
  EXPECT_EQ(clamp_intra_run_threads(1), 1u);
  const unsigned hw = hardware_threads();
  EXPECT_EQ(clamp_intra_run_threads(std::min(2u, hw)), std::min(2u, hw));
}

TEST(Concurrency, ClampCapsProductAgainstHardware) {
  const unsigned hw = hardware_threads();
  {
    // A sweep already occupies every hardware thread: any intra-run request
    // above 1 must collapse to the per-job budget of 1.
    const ActiveJobsGuard guard(hw);
    EXPECT_EQ(active_sweep_jobs(), hw);
    EXPECT_EQ(clamp_intra_run_threads(4), 1u);
    // threads<=1 never warns or clamps: it is the serial path.
    EXPECT_EQ(clamp_intra_run_threads(1), 1u);
  }
  // Guard released: the budget is whole-machine again.
  EXPECT_EQ(active_sweep_jobs(), 0u);
  EXPECT_EQ(clamp_intra_run_threads(hw), hw);
}

TEST(Concurrency, GuardsNest) {
  const ActiveJobsGuard outer(1);
  {
    const ActiveJobsGuard inner(2);
    EXPECT_EQ(active_sweep_jobs(), 3u);
  }
  EXPECT_EQ(active_sweep_jobs(), 1u);
}

TEST(Concurrency, HardwareThreadsHonorsEnvOverride) {
  // The binary-wide override at the top of this file guarantees the env var
  // is set; hardware_threads() must report exactly that value regardless of
  // the host's visible CPU count.
  const char* env = std::getenv("PACSIM_HW_THREADS");
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(hardware_threads(),
            static_cast<unsigned>(std::strtoul(env, nullptr, 10)));
}

}  // namespace
}  // namespace pacsim
