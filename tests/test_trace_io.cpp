#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"

namespace pacsim {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(TraceIo, RoundTripsExactly) {
  TempFile file("pacsim_roundtrip.trc");
  Rng rng(11);
  std::vector<Trace> traces(3);
  for (Trace& t : traces) {
    const std::size_t n = 100 + rng.below(400);
    for (std::size_t i = 0; i < n; ++i) {
      TraceOp op;
      op.kind = static_cast<OpKind>(rng.below(5));
      op.vaddr = rng.next();
      op.arg = static_cast<std::uint32_t>(rng.below(64) + 1);
      t.push_back(op);
    }
  }
  save_traces(file.path, traces);
  const auto loaded = load_traces(file.path);
  ASSERT_EQ(loaded.size(), traces.size());
  for (std::size_t c = 0; c < traces.size(); ++c) {
    ASSERT_EQ(loaded[c].size(), traces[c].size());
    for (std::size_t i = 0; i < traces[c].size(); ++i) {
      EXPECT_EQ(loaded[c][i].vaddr, traces[c][i].vaddr);
      EXPECT_EQ(loaded[c][i].arg, traces[c][i].arg);
      EXPECT_EQ(loaded[c][i].kind, traces[c][i].kind);
    }
  }
}

// Property test: any trace set - every OpKind, empty per-core traces,
// varying core counts - must survive save/load byte-identically. Several
// seeds keep the sampled space honest without noticeable runtime.
TEST(TraceIo, RandomTraceSetsRoundTripAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 7ull, 23ull, 1234ull}) {
    TempFile file("pacsim_roundtrip_prop.trc");
    Rng rng(seed);
    std::vector<Trace> traces(1 + rng.below(6));
    for (Trace& t : traces) {
      const std::size_t n = rng.below(300);  // 0 is a valid (empty) trace
      for (std::size_t i = 0; i < n; ++i) {
        TraceOp op;
        op.kind = static_cast<OpKind>(rng.below(5));  // all five OpKinds
        op.vaddr = rng.next();
        op.arg = static_cast<std::uint32_t>(rng.next());
        t.push_back(op);
      }
    }
    save_traces(file.path, traces);
    EXPECT_EQ(load_traces(file.path), traces) << "seed " << seed;
  }
}

TEST(TraceIo, EmptyTraceSetRoundTrips) {
  TempFile file("pacsim_empty.trc");
  save_traces(file.path, {});
  EXPECT_TRUE(load_traces(file.path).empty());
}

TEST(TraceIo, EmptyPerCoreTraces) {
  TempFile file("pacsim_empty_cores.trc");
  save_traces(file.path, std::vector<Trace>(4));
  const auto loaded = load_traces(file.path);
  ASSERT_EQ(loaded.size(), 4u);
  for (const Trace& t : loaded) EXPECT_TRUE(t.empty());
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(load_traces(temp_path("pacsim_does_not_exist.trc")),
               std::runtime_error);
}

TEST(TraceIo, RejectsBadMagic) {
  TempFile file("pacsim_badmagic.trc");
  std::ofstream out(file.path, std::ios::binary);
  out << "NOTATRACEFILE....";
  out.close();
  EXPECT_THROW(load_traces(file.path), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedFile) {
  TempFile file("pacsim_trunc.trc");
  Trace t;
  t.push_back({0x1000, 8, OpKind::kLoad});
  save_traces(file.path, {t});
  // Chop off the last few bytes.
  const auto size = std::filesystem::file_size(file.path);
  std::filesystem::resize_file(file.path, size - 5);
  EXPECT_THROW(load_traces(file.path), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedHeader) {
  TempFile file("pacsim_trunc_header.trc");
  Trace t;
  t.push_back({0x1000, 8, OpKind::kLoad});
  save_traces(file.path, {t});
  // Keep the magic but cut into the core-count field.
  std::filesystem::resize_file(file.path, 10);
  EXPECT_THROW(load_traces(file.path), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedOpArray) {
  TempFile file("pacsim_trunc_ops.trc");
  Trace t;
  for (int i = 0; i < 8; ++i) {
    t.push_back({0x1000 + static_cast<Addr>(i) * 64, 8, OpKind::kStore});
  }
  save_traces(file.path, {t});
  // Announce 8 ops but deliver roughly half of them.
  const auto size = std::filesystem::file_size(file.path);
  std::filesystem::resize_file(file.path, size - 4 * 13);
  EXPECT_THROW(load_traces(file.path), std::runtime_error);
}

TEST(TraceIo, RejectsCorruptOpKind) {
  TempFile file("pacsim_badkind.trc");
  Trace t;
  t.push_back({0x1000, 8, OpKind::kLoad});
  save_traces(file.path, {t});
  // The kind byte is the last byte of the file; overwrite with garbage.
  std::fstream io(file.path,
                  std::ios::binary | std::ios::in | std::ios::out);
  io.seekp(-1, std::ios::end);
  io.put(static_cast<char>(0x7F));
  io.close();
  EXPECT_THROW(load_traces(file.path), std::runtime_error);
}

}  // namespace
}  // namespace pacsim
