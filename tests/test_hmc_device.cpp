#include "hmc/hmc_device.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mem/packet.hpp"

namespace pacsim {
namespace {

struct DeviceHarness {
  HmcConfig cfg;
  PowerModel power;
  HmcDevice device{cfg, &power};

  /// Run until all outstanding requests complete; returns responses.
  std::vector<DeviceResponse> drain(Cycle* now, Cycle limit = 1'000'000) {
    std::vector<DeviceResponse> out;
    while (!device.idle() && *now < limit) {
      device.tick(*now);
      for (auto& r : device.drain_completed()) out.push_back(std::move(r));
      ++*now;
    }
    return out;
  }
};

DeviceRequest make_req(std::uint64_t id, Addr base, std::uint32_t bytes,
                       bool store = false) {
  DeviceRequest r;
  r.id = id;
  r.base = base;
  r.bytes = bytes;
  r.store = store;
  r.raw_ids = {id * 100};
  return r;
}

TEST(HmcDevice, SingleReadCompletesWithPlausibleLatency) {
  DeviceHarness h;
  Cycle now = 0;
  h.device.submit(make_req(1, 0, 64), now);
  const auto responses = h.drain(&now);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].request_id, 1u);
  EXPECT_EQ(responses[0].raw_ids, (std::vector<std::uint64_t>{100}));
  // Unloaded latency: tens of cycles, below the loaded 93 ns (186 cycles).
  const double lat = h.device.stats().access_latency.mean();
  EXPECT_GT(lat, 40.0);
  EXPECT_LT(lat, 220.0);
}

TEST(HmcDevice, WritesCompleteToo) {
  DeviceHarness h;
  Cycle now = 0;
  h.device.submit(make_req(1, 4096, 256, true), now);
  EXPECT_EQ(h.drain(&now).size(), 1u);
  EXPECT_EQ(h.device.stats().payload_bytes, 256u);
}

TEST(HmcDevice, EveryRequestGetsExactlyOneResponse) {
  DeviceHarness h;
  Cycle now = 0;
  std::set<std::uint64_t> expected;
  for (std::uint64_t i = 0; i < 100; ++i) {
    while (!h.device.can_accept()) {
      h.device.tick(now);
      ++now;
    }
    h.device.submit(make_req(i + 1, i * 256, 64, i % 3 == 0), now);
    expected.insert(i + 1);
  }
  for (const auto& rsp : h.drain(&now)) {
    EXPECT_TRUE(expected.erase(rsp.request_id) == 1)
        << "duplicate or unknown response " << rsp.request_id;
  }
  EXPECT_TRUE(expected.empty());
}

TEST(HmcDevice, SameRowBackToBackConflicts) {
  DeviceHarness h;
  Cycle now = 0;
  // Four 64 B reads of one 256 B row: the paper's motivating example - the
  // row must be opened and closed four times (section 2.1.1).
  for (std::uint64_t i = 0; i < 4; ++i) {
    h.device.submit(make_req(i + 1, i * 64, 64), now);
  }
  h.drain(&now);
  EXPECT_GE(h.device.stats().bank_conflicts, 3u);
  EXPECT_EQ(h.device.stats().row_accesses, 4u);
}

TEST(HmcDevice, CoalescedRowAccessAvoidsConflicts) {
  DeviceHarness h;
  Cycle now = 0;
  h.device.submit(make_req(1, 0, 256), now);  // one 256 B request
  h.drain(&now);
  EXPECT_EQ(h.device.stats().bank_conflicts, 0u);
  EXPECT_EQ(h.device.stats().row_accesses, 1u);
}

TEST(HmcDevice, DistinctRowsNoConflict) {
  DeviceHarness h;
  Cycle now = 0;
  // Consecutive rows interleave across vaults: no bank contention.
  for (std::uint64_t i = 0; i < 8; ++i) {
    h.device.submit(make_req(i + 1, i * 256, 64), now);
  }
  h.drain(&now);
  EXPECT_EQ(h.device.stats().bank_conflicts, 0u);
}

TEST(HmcDevice, RoundRobinSpreadsLinkRoutes) {
  DeviceHarness h;
  Cycle now = 0;
  // 64 requests to rotating vaults: both local and remote routes appear.
  for (std::uint64_t i = 0; i < 64; ++i) {
    while (!h.device.can_accept()) {
      h.device.tick(now);
      ++now;
    }
    h.device.submit(make_req(i + 1, i * 256, 64), now);
  }
  h.drain(&now);
  EXPECT_GT(h.device.stats().local_routes, 0u);
  EXPECT_GT(h.device.stats().remote_routes, 0u);
  EXPECT_EQ(h.device.stats().local_routes + h.device.stats().remote_routes,
            64u);
}

TEST(HmcDevice, WideRequestSpansRows) {
  HmcConfig cfg;
  PowerModel power;
  HmcDevice device(cfg, &power);
  Cycle now = 0;
  // 1 KB request decomposes into four 256 B row accesses in four vaults.
  device.submit(make_req(1, 0, 1024), now);
  while (!device.idle()) {
    device.tick(now);
    device.drain_completed();
    ++now;
  }
  EXPECT_EQ(device.stats().row_accesses, 4u);
  EXPECT_EQ(device.stats().requests, 1u);
}

TEST(HmcDevice, FlitAccounting) {
  DeviceHarness h;
  Cycle now = 0;
  h.device.submit(make_req(1, 0, 128), now);           // read
  h.device.submit(make_req(2, 4096, 128, true), now);  // write
  h.drain(&now);
  // Read: 1 request FLIT + 9 response FLITs; write: 9 + 1.
  EXPECT_EQ(h.device.stats().request_flits, 1u + 9u);
  EXPECT_EQ(h.device.stats().response_flits, 9u + 1u);
}

TEST(HmcDevice, EnergyAccumulatesAcrossClasses) {
  DeviceHarness h;
  Cycle now = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    h.device.submit(make_req(i + 1, i * 64, 64), now);
  }
  h.drain(&now);
  EXPECT_GT(h.power.energy(HmcOp::kDramAccess), 0.0);
  EXPECT_GT(h.power.energy(HmcOp::kDramData), 0.0);
  EXPECT_GT(h.power.energy(HmcOp::kVaultCtrl), 0.0);
  EXPECT_GT(h.power.energy(HmcOp::kVaultRqstSlot), 0.0);
  EXPECT_GT(h.power.energy(HmcOp::kVaultRspSlot), 0.0);
  EXPECT_GT(h.power.total(), 0.0);
}

TEST(HmcDevice, AdmissionControl) {
  HmcConfig cfg;
  cfg.max_outstanding = 4;
  PowerModel power;
  HmcDevice device(cfg, &power);
  Cycle now = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(device.can_accept());
    device.submit(make_req(i + 1, i * 4096, 64), now);
  }
  EXPECT_FALSE(device.can_accept());
  while (!device.idle()) {
    device.tick(now);
    device.drain_completed();
    ++now;
  }
  EXPECT_TRUE(device.can_accept());
}

TEST(HmcDevice, LargerPayloadTakesLonger) {
  DeviceHarness small, large;
  Cycle now_s = 0, now_l = 0;
  small.device.submit(make_req(1, 0, 64), now_s);
  large.device.submit(make_req(1, 0, 256), now_l);
  small.drain(&now_s);
  large.drain(&now_l);
  EXPECT_LT(small.device.stats().access_latency.mean(),
            large.device.stats().access_latency.mean());
}


TEST(HmcDevice, RefreshRotatesAcrossVaults) {
  HmcConfig cfg;
  cfg.t_refi = 50;
  PowerModel power;
  HmcDevice device(cfg, &power);
  for (Cycle now = 0; now < 50 * 40; ++now) device.tick(now);
  // ~40 refresh slots elapsed; more than a full vault rotation.
  EXPECT_GE(device.stats().refreshes, 32u);
  EXPECT_GT(power.energy(HmcOp::kDramRefresh), 0.0);
}

TEST(HmcDevice, RefreshCanBeDisabled) {
  HmcConfig cfg;
  cfg.enable_refresh = false;
  PowerModel power;
  HmcDevice device(cfg, &power);
  for (Cycle now = 0; now < 10'000; ++now) device.tick(now);
  EXPECT_EQ(device.stats().refreshes, 0u);
  EXPECT_DOUBLE_EQ(power.energy(HmcOp::kDramRefresh), 0.0);
}

TEST(HmcDevice, RefreshDelaysColocatedAccess) {
  HmcConfig cfg;
  cfg.t_refi = 1000;  // first refresh (vault 0) at cycle 1000
  cfg.t_rfc = 400;
  PowerModel power;
  HmcDevice device(cfg, &power);
  Cycle now = 0;
  for (; now < 1001; ++now) device.tick(now);  // vault 0 now refreshing
  DeviceRequest req;
  req.id = 1;
  req.base = 0;  // row 0 -> vault 0
  req.bytes = 64;
  device.submit(req, now);
  std::vector<DeviceResponse> responses;
  while (device.outstanding() > 0 && now < 100'000) {
    device.tick(now);
    for (auto& r : device.drain_completed()) responses.push_back(r);
    ++now;
  }
  ASSERT_EQ(responses.size(), 1u);
  // Completion must land after the refresh window ends (cycle 1400).
  EXPECT_GT(responses[0].completed_at, 1400u);
}

TEST(PowerModel, UnitEnergiesApplied) {
  PowerConfig cfg;
  cfg.dram_access = 100.0;
  PowerModel pm(cfg);
  pm.add(HmcOp::kDramAccess, 3.0);
  EXPECT_DOUBLE_EQ(pm.energy(HmcOp::kDramAccess), 300.0);
  pm.add_ctrl_wait(10.0);
  EXPECT_DOUBLE_EQ(pm.energy(HmcOp::kVaultCtrl),
                   cfg.vault_ctrl_wait_cycle * 10.0);
  pm.reset();
  EXPECT_DOUBLE_EQ(pm.total(), 0.0);
}

}  // namespace
}  // namespace pacsim
