#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace pacsim {
namespace {

CacheConfig tiny() {
  CacheConfig cfg;
  cfg.size_bytes = 1024;  // 4 sets x 4 ways x 64 B
  cfg.ways = 4;
  cfg.line_bytes = 64;
  return cfg;
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny());
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1020, false).hit);  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ProbeHasNoSideEffects) {
  Cache c(tiny());
  EXPECT_FALSE(c.probe(0x1000));
  c.access(0x1000, false);
  EXPECT_TRUE(c.probe(0x1000));
  EXPECT_EQ(c.hits(), 0u);  // probes don't count
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction) {
  Cache c(tiny());  // 4 ways: set stride = 4 lines * 64 = 256 B
  // Fill one set with 4 distinct tags.
  for (Addr i = 0; i < 4; ++i) c.access(i * 256, false);
  // Touch the first to make it MRU; line 0 must survive the next fill.
  c.access(0, false);
  c.access(4 * 256, false);  // evicts tag 1 (LRU)
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(256));
}

TEST(Cache, DirtyVictimReportsWriteback) {
  Cache c(tiny());
  c.access(0, true);  // dirty line in set 0
  for (Addr i = 1; i < 4; ++i) c.access(i * 256, false);
  const CacheAccess acc = c.access(4 * 256, false);
  EXPECT_FALSE(acc.hit);
  EXPECT_TRUE(acc.writeback);
  EXPECT_EQ(acc.victim_addr, 0u);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanVictimNoWriteback) {
  Cache c(tiny());
  for (Addr i = 0; i < 5; ++i) {
    EXPECT_FALSE(c.access(i * 256, false).writeback);
  }
}

TEST(Cache, StoreMarksDirtyOnHitToo) {
  Cache c(tiny());
  c.access(0, false);  // clean
  c.access(0, true);   // hit, now dirty
  for (Addr i = 1; i < 5; ++i) c.access(i * 256, false);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, VictimAddressReconstruction) {
  Cache c(tiny());
  const Addr victim = 7 * 256 + 64;  // set 1, some tag
  c.access(victim, true);
  for (Addr i = 0; i < 4; ++i) c.access(i * 256 + 64, false);
  // The dirty victim must have been reported with its block base.
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, PrefetchedBitReportedOnceOnDemandHit) {
  Cache c(tiny());
  c.fill(0x2000);
  const CacheAccess first = c.access(0x2000, false);
  EXPECT_TRUE(first.hit);
  EXPECT_TRUE(first.prefetched_hit);
  const CacheAccess second = c.access(0x2000, false);
  EXPECT_TRUE(second.hit);
  EXPECT_FALSE(second.prefetched_hit);
}

TEST(Cache, DemandAllocationIsNotPrefetched) {
  Cache c(tiny());
  c.access(0x3000, false);
  EXPECT_FALSE(c.access(0x3000, false).prefetched_hit);
}

TEST(Cache, FillCountsAsMissNotHit) {
  Cache c(tiny());
  c.fill(0x1000);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, SetIndexingSeparatesSets) {
  Cache c(tiny());
  // 8 lines in different sets: no evictions with 4 ways x 4 sets.
  for (Addr i = 0; i < 8; ++i) c.access(i * 64, false);
  for (Addr i = 0; i < 8; ++i) EXPECT_TRUE(c.probe(i * 64));
}

TEST(Cache, LargeConfigSetCount) {
  CacheConfig cfg;
  cfg.size_bytes = 8ULL << 20;
  cfg.ways = 8;
  Cache c(cfg);
  EXPECT_EQ(c.num_sets(), (8ULL << 20) / (8 * 64));
}

}  // namespace
}  // namespace pacsim
