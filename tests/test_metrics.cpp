#include "sim/metrics.hpp"

#include "sim/system_config.hpp"

#include <gtest/gtest.h>

namespace pacsim {
namespace {

TEST(RunResult, TransactionEfficiencyFromIssuedStats) {
  RunResult r;
  r.coal.issued_requests = 10;
  r.coal.issued_payload_bytes = 10 * 64;
  EXPECT_NEAR(r.transaction_eff(), 64.0 / 96.0, 1e-9);
  r.coal.issued_payload_bytes = 10 * 256;
  EXPECT_NEAR(r.transaction_eff(), 256.0 / 288.0, 1e-9);
}

TEST(RunResult, LinkBytesAddControlOverhead) {
  RunResult r;
  r.coal.issued_requests = 5;
  r.coal.issued_payload_bytes = 5 * 128;
  EXPECT_EQ(r.link_bytes(), 5u * 128 + 5u * 32);
}

TEST(RunResult, RuntimeUsesClock) {
  RunResult r;
  r.cycles = 2000;
  r.ns_per_cycle = 0.5;
  EXPECT_DOUBLE_EQ(r.runtime_ns(), 1000.0);
}

TEST(RunResult, CoalescingEfficiencyDelegates) {
  RunResult r;
  r.coal.raw_requests = 100;
  r.coal.coalesced_away = 56;
  EXPECT_DOUBLE_EQ(r.coalescing_efficiency(), 0.56);
}

TEST(RunResult, HmcLatencyInNanoseconds) {
  RunResult r;
  r.ns_per_cycle = 0.5;
  r.hmc.access_latency.add(186.0);  // 93 ns at 2 GHz
  EXPECT_DOUBLE_EQ(r.avg_hmc_latency_ns(), 93.0);
}

TEST(CoalescerStats, EfficiencyGuardsZeroDivision) {
  CoalescerStats s;
  EXPECT_DOUBLE_EQ(s.coalescing_efficiency(), 0.0);
}

TEST(SystemConfigNames, CoalescerKindStrings) {
  EXPECT_EQ(to_string(CoalescerKind::kDirect), "direct");
  EXPECT_EQ(to_string(CoalescerKind::kMshrDmc), "mshr-dmc");
  EXPECT_EQ(to_string(CoalescerKind::kPac), "pac");
  EXPECT_EQ(to_string(CoalescerKind::kSortingDmc), "sorting-dmc");
}

TEST(SystemConfigNames, ClockConversion) {
  SystemConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.ns_per_cycle(), 0.5);
  cfg.cpu_ghz = 1.0;
  EXPECT_DOUBLE_EQ(cfg.ns_per_cycle(), 1.0);
}

}  // namespace
}  // namespace pacsim
