#include <gtest/gtest.h>

#include "pac/blockmap_decoder.hpp"
#include "pac/request_assembler.hpp"

namespace pacsim {
namespace {

CoalescingStream make_stream(Addr ppn, std::initializer_list<unsigned> blocks,
                             bool store = false) {
  CoalescingStream s;
  s.valid = true;
  s.ppn = ppn;
  s.store = store;
  std::uint64_t id = 1;
  for (unsigned b : blocks) {
    s.map.set(b);
    s.raws.push_back(RawRef{static_cast<std::uint16_t>(b),
                            static_cast<std::uint16_t>(b), id++});
    ++s.count;
  }
  return s;
}

struct DecoderTest : ::testing::Test {
  PacConfig cfg;
  PacStats stats;
  BlockMapDecoder decoder{cfg, &stats};
  FixedQueue<BlockSequence> buffer{32};

  void run_until_idle(Cycle* now, Cycle limit = 1000) {
    while (!decoder.idle() && *now < limit) {
      decoder.tick(*now, buffer);
      ++*now;
    }
  }
};

TEST_F(DecoderTest, EmitsOnlyNonEmptyChunks) {
  decoder.accept(make_stream(9, {1, 2, 9}), 0);
  Cycle now = 0;
  run_until_idle(&now);
  ASSERT_EQ(buffer.size(), 2u);
  const BlockSequence a = buffer.pop();
  EXPECT_EQ(a.chunk_index, 0u);
  EXPECT_EQ(a.bits, 0b0110);
  const BlockSequence b = buffer.pop();
  EXPECT_EQ(b.chunk_index, 2u);
  EXPECT_EQ(b.bits, 0b0010);
}

TEST_F(DecoderTest, TwoCycleDecodePlusOneWritePerChunk) {
  decoder.accept(make_stream(9, {0, 4, 8}), 0);
  // decode_cycles = 2, then one buffer write per cycle for 3 chunks.
  decoder.tick(0, buffer);
  decoder.tick(1, buffer);
  EXPECT_TRUE(buffer.empty());  // still decoding
  decoder.tick(2, buffer);
  EXPECT_EQ(buffer.size(), 1u);
  decoder.tick(3, buffer);
  EXPECT_EQ(buffer.size(), 2u);
  decoder.tick(4, buffer);
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_TRUE(decoder.idle());
}

TEST_F(DecoderTest, RawsOwnedByFirstBlockChunk) {
  CoalescingStream s = make_stream(9, {3});
  // A raw spanning blocks 3-4 crosses the chunk boundary; it must appear
  // only in chunk 0 (owner of its first block).
  s.map.set(4);
  s.raws[0].last_block = 4;
  decoder.accept(std::move(s), 0);
  Cycle now = 0;
  run_until_idle(&now);
  ASSERT_EQ(buffer.size(), 2u);
  const BlockSequence a = buffer.pop();
  const BlockSequence b = buffer.pop();
  EXPECT_EQ(a.raws.size(), 1u);
  EXPECT_TRUE(b.raws.empty());
}

TEST_F(DecoderTest, StallsWhenBufferFull) {
  FixedQueue<BlockSequence> small(1);
  decoder.accept(make_stream(9, {0, 4}), 0);
  Cycle now = 0;
  for (; now < 10; ++now) decoder.tick(now, small);
  EXPECT_FALSE(decoder.idle());  // second chunk still pending
  small.pop();
  for (; now < 20; ++now) decoder.tick(now, small);
  EXPECT_TRUE(decoder.idle());
}

TEST_F(DecoderTest, RecordsStage2Latency) {
  CoalescingStream s = make_stream(9, {1, 2});
  s.flushed_at = 0;
  decoder.accept(std::move(s), 0);
  Cycle now = 0;
  run_until_idle(&now);
  EXPECT_EQ(stats.stage2_latency.count(), 1u);
  EXPECT_GE(stats.stage2_latency.mean(), cfg.decode_cycles);
}

struct AssemblerTest : ::testing::Test {
  PacConfig cfg;
  PacStats stats;
  CoalescingTable table{cfg.protocol};
  std::uint64_t next_id = 1;
  RequestAssembler assembler{cfg, &stats, &table, &next_id};
  FixedQueue<BlockSequence> in{8};

  struct Sink : MaqSink {
    FixedQueue<DeviceRequest> q{16};
    bool emit(DeviceRequest&& r) override { return q.push(std::move(r)); }
    bool maq_full() const override { return q.full(); }
  } sink;

  BlockSequence seq(Addr ppn, std::uint16_t chunk, std::uint16_t bits,
                    std::initializer_list<RawRef> raws, bool store = false) {
    BlockSequence s;
    s.ppn = ppn;
    s.chunk_index = chunk;
    s.bits = bits;
    s.store = store;
    s.raws = raws;
    return s;
  }

  void run(Cycle* now, Cycle limit = 1000) {
    while ((!assembler.idle() || !in.empty()) && *now < limit) {
      assembler.tick(*now, in, sink);
      ++*now;
    }
  }
};

TEST_F(AssemblerTest, BuildsPaperExampleRequest) {
  // Fig 5(b): stream 1 with sequence 0110 in chunk 0 of page 0x9 produces
  // one 128 B request covering blocks 1-2.
  ASSERT_TRUE(in.push(seq(0x9, 0, 0b0110,
                          {RawRef{1, 1, 11}, RawRef{2, 2, 22}})));
  Cycle now = 0;
  run(&now);
  ASSERT_EQ(sink.q.size(), 1u);
  const DeviceRequest r = sink.q.pop();
  EXPECT_EQ(r.base, (0x9ULL << kPageShift) + 64);
  EXPECT_EQ(r.bytes, 128u);
  EXPECT_FALSE(r.store);
  EXPECT_EQ(r.raw_ids, (std::vector<std::uint64_t>{11, 22}));
}

TEST_F(AssemblerTest, ChunkOffsetAppliedToBase) {
  ASSERT_TRUE(in.push(seq(0x9, 3, 0b0001, {RawRef{12, 12, 5}})));
  Cycle now = 0;
  run(&now);
  const DeviceRequest r = sink.q.pop();
  EXPECT_EQ(r.base, (0x9ULL << kPageShift) + 12 * 64);
  EXPECT_EQ(r.bytes, 64u);
}

TEST_F(AssemblerTest, GappedChunkMakesTwoRequests) {
  ASSERT_TRUE(in.push(
      seq(0x2, 0, 0b1001, {RawRef{0, 0, 1}, RawRef{3, 3, 2}})));
  Cycle now = 0;
  run(&now);
  ASSERT_EQ(sink.q.size(), 2u);
  const DeviceRequest a = sink.q.pop();
  const DeviceRequest b = sink.q.pop();
  EXPECT_EQ(a.bytes, 64u);
  EXPECT_EQ(b.bytes, 64u);
  EXPECT_EQ(a.raw_ids, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(b.raw_ids, (std::vector<std::uint64_t>{2}));
}

TEST_F(AssemblerTest, StoreBitPropagates) {
  ASSERT_TRUE(in.push(seq(0x4, 0, 0b0011, {RawRef{0, 0, 1}, RawRef{1, 1, 2}},
                          /*store=*/true)));
  Cycle now = 0;
  run(&now);
  EXPECT_TRUE(sink.q.pop().store);
}

TEST_F(AssemblerTest, TwoCyclesPerRequestPacing) {
  // One sequence with one request: 1 cycle pop + 1 lookup + 1 assemble.
  ASSERT_TRUE(in.push(seq(0x9, 0, 0b0001, {RawRef{0, 0, 1}})));
  Cycle now = 0;
  assembler.tick(now++, in, sink);  // pop + lookup start
  EXPECT_TRUE(sink.q.empty());
  assembler.tick(now++, in, sink);  // lookup done, assemble
  EXPECT_EQ(sink.q.size(), 1u);
}

TEST_F(AssemblerTest, StallsWhenMaqFull) {
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(sink.q.push(DeviceRequest{}));
  }
  ASSERT_TRUE(in.push(seq(0x9, 0, 0b0001, {RawRef{0, 0, 1}})));
  Cycle now = 0;
  for (; now < 50; ++now) assembler.tick(now, in, sink);
  EXPECT_FALSE(assembler.idle());
  sink.q.pop();
  for (; now < 100; ++now) assembler.tick(now, in, sink);
  EXPECT_TRUE(assembler.idle());
  EXPECT_EQ(sink.q.size(), 16u);
}

TEST_F(AssemblerTest, CoalescedAwayCountsReducedRequests) {
  ASSERT_TRUE(in.push(seq(0x9, 0, 0b1111,
                          {RawRef{0, 0, 1}, RawRef{1, 1, 2}, RawRef{2, 2, 3},
                           RawRef{3, 3, 4}})));
  Cycle now = 0;
  run(&now);
  ASSERT_EQ(sink.q.size(), 1u);
  EXPECT_EQ(sink.q.pop().bytes, 256u);
  EXPECT_EQ(stats.base.coalesced_away, 3u);  // 4 raws -> 1 request
}

TEST_F(AssemblerTest, AssignsFreshDeviceIds) {
  ASSERT_TRUE(in.push(seq(0x1, 0, 0b0001, {RawRef{0, 0, 1}})));
  ASSERT_TRUE(in.push(seq(0x2, 0, 0b0001, {RawRef{0, 0, 2}})));
  Cycle now = 0;
  run(&now);
  ASSERT_EQ(sink.q.size(), 2u);
  const auto a = sink.q.pop();
  const auto b = sink.q.pop();
  EXPECT_NE(a.id, b.id);
}

}  // namespace
}  // namespace pacsim
