#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace pacsim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricMeanApproximate) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.3);
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "workload=bfs", "--quick", "ops=5000",
                        "ratio=0.5"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get("workload"), "bfs");
  EXPECT_TRUE(cli.has("quick"));
  EXPECT_EQ(cli.get_u64("ops", 0), 5000u);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_FALSE(cli.has("anything"));
  EXPECT_EQ(cli.get("x", "dflt"), "dflt");
  EXPECT_EQ(cli.get_u64("n", 9), 9u);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 2.5), 2.5);
}

TEST(Cli, StripsLeadingDashes) {
  const char* argv[] = {"prog", "--k=v", "-flag"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get("k"), "v");
  EXPECT_TRUE(cli.has("flag"));
}

TEST(Table, RendersAlignedCells) {
  Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yy", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a  | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| yy | 22          |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("| only |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(85.1599), "85.16%");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}


TEST(Table, CsvRendering) {
  Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "says \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"says \"\"hi\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace pacsim
