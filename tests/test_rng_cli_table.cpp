#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace pacsim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricMeanApproximate) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.3);
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "workload=bfs", "--quick", "ops=5000",
                        "ratio=0.5"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get("workload"), "bfs");
  EXPECT_TRUE(cli.has("quick"));
  EXPECT_EQ(cli.get_u64("ops", 0), 5000u);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_FALSE(cli.has("anything"));
  EXPECT_EQ(cli.get("x", "dflt"), "dflt");
  EXPECT_EQ(cli.get_u64("n", 9), 9u);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 2.5), 2.5);
}

TEST(Cli, StripsLeadingDashes) {
  const char* argv[] = {"prog", "--k=v", "-flag"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get("k"), "v");
  EXPECT_TRUE(cli.has("flag"));
}

TEST(Cli, U64AcceptsTheFullPrefixFamily) {
  const char* argv[] = {"prog", "dec=1500", "hex=0x40", "oct=0755", "z=0"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_u64("dec", 0), 1500u);
  EXPECT_EQ(cli.get_u64("hex", 0), 0x40u);
  EXPECT_EQ(cli.get_u64("oct", 0), 0755u);
  EXPECT_EQ(cli.get_u64("z", 7), 0u);
}

TEST(Cli, U64RejectsGarbageLoudly) {
  // A typo like ops=12x silently truncating to 12 (or worse, to 0) sends
  // an entire sweep off with the wrong workload size; the parser throws
  // and names the offending key=value instead.
  const char* argv[] = {"prog", "ops=12x", "neg=-5", "empty=", "word=ten"};
  Cli cli(5, const_cast<char**>(argv));
  for (const char* key : {"ops", "neg", "empty", "word"}) {
    try {
      (void)cli.get_u64(key, 0);
      FAIL() << "no throw for key " << key;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
          << "diagnostic does not name the key: " << e.what();
    }
  }
}

TEST(Cli, DoubleRejectsTrailingGarbage) {
  const char* argv[] = {"prog", "rate=0.1.2", "ok=1e-3", "huge=1e999"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("ok", 0.0), 1e-3);
  EXPECT_THROW((void)cli.get_double("rate", 0.0), std::invalid_argument);
  EXPECT_THROW((void)cli.get_double("huge", 0.0), std::invalid_argument);
}

TEST(Cli, WarnsAboutKnobsNobodyQueried) {
  ::testing::internal::CaptureStderr();
  {
    const char* argv[] = {"prog", "used=1", "opz=5000"};
    Cli cli(3, const_cast<char**>(argv));
    (void)cli.get_u64("used", 0);
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("opz=5000"), std::string::npos) << err;
  EXPECT_EQ(err.find("used"), std::string::npos)
      << "queried knob wrongly reported: " << err;
}

TEST(Table, RendersAlignedCells) {
  Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yy", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a  | long-header |"), std::string::npos);
  EXPECT_NE(s.find("| yy | 22          |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("| only |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(85.1599), "85.16%");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}


TEST(Table, CsvRendering) {
  Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "says \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"says \"\"hi\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace pacsim
