#include "analysis/dbscan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace pacsim {
namespace {

TEST(Dbscan, EmptyInput) {
  const DbscanResult r = dbscan_addresses({}, DbscanConfig{});
  EXPECT_EQ(r.num_clusters(), 0u);
  EXPECT_EQ(r.noise_count, 0u);
  EXPECT_DOUBLE_EQ(r.clustered_fraction(), 0.0);
}

TEST(Dbscan, SingleDenseCluster) {
  std::vector<Addr> pts;
  for (Addr i = 0; i < 100; ++i) pts.push_back(0x10000 + i * 8);
  const DbscanResult r = dbscan_addresses(pts, DbscanConfig{});
  EXPECT_EQ(r.num_clusters(), 1u);
  EXPECT_EQ(r.noise_count, 0u);
  EXPECT_EQ(r.clusters[0].size, 100u);
  EXPECT_EQ(r.clusters[0].min_addr, 0x10000u);
  EXPECT_EQ(r.clusters[0].max_addr, 0x10000u + 99 * 8);
}

TEST(Dbscan, TwoSeparatedClustersAndNoise) {
  std::vector<Addr> pts;
  for (Addr i = 0; i < 20; ++i) pts.push_back(0x1000 + i * 64);
  for (Addr i = 0; i < 20; ++i) pts.push_back(0x900000 + i * 64);
  pts.push_back(0x40000000);  // isolated noise point
  DbscanConfig cfg;
  cfg.epsilon = 4096;
  cfg.min_points = 4;
  const DbscanResult r = dbscan_addresses(pts, cfg);
  EXPECT_EQ(r.num_clusters(), 2u);
  EXPECT_EQ(r.noise_count, 1u);
  EXPECT_EQ(r.labels.back(), -1);
}

TEST(Dbscan, MinPointsGovernsCorePoints) {
  // 3 points within epsilon: below min_points=4, all noise.
  std::vector<Addr> pts = {100, 200, 300};
  DbscanConfig cfg;
  cfg.epsilon = 1000;
  cfg.min_points = 4;
  EXPECT_EQ(dbscan_addresses(pts, cfg).noise_count, 3u);
  cfg.min_points = 3;
  EXPECT_EQ(dbscan_addresses(pts, cfg).noise_count, 0u);
}

TEST(Dbscan, ChainExpansion) {
  // A chain of points each within epsilon of the next must form ONE
  // cluster through density reachability.
  std::vector<Addr> pts;
  for (Addr i = 0; i < 50; ++i) pts.push_back(i * 3000);  // eps=4096
  DbscanConfig cfg;
  cfg.epsilon = 4096;
  cfg.min_points = 2;
  const DbscanResult r = dbscan_addresses(pts, cfg);
  EXPECT_EQ(r.num_clusters(), 1u);
  EXPECT_EQ(r.clusters[0].size, 50u);
}

TEST(Dbscan, LabelsMatchInputOrder) {
  std::vector<Addr> pts = {0x900000, 0x1000, 0x900040, 0x1040, 0x1080,
                           0x900080, 0x10C0, 0x9000C0};
  DbscanConfig cfg;
  cfg.epsilon = 4096;
  cfg.min_points = 3;
  const DbscanResult r = dbscan_addresses(pts, cfg);
  ASSERT_EQ(r.labels.size(), pts.size());
  // Points interleaved from two clusters: labels must agree per region.
  EXPECT_EQ(r.labels[0], r.labels[2]);
  EXPECT_EQ(r.labels[1], r.labels[3]);
  EXPECT_NE(r.labels[0], r.labels[1]);
}

TEST(Dbscan, CentroidWithinClusterBounds) {
  Rng rng(8);
  std::vector<Addr> pts;
  for (int i = 0; i < 200; ++i) pts.push_back(0x5000 + rng.below(2048));
  const DbscanResult r = dbscan_addresses(pts, DbscanConfig{});
  ASSERT_EQ(r.num_clusters(), 1u);
  EXPECT_GE(r.clusters[0].centroid, static_cast<double>(r.clusters[0].min_addr));
  EXPECT_LE(r.clusters[0].centroid, static_cast<double>(r.clusters[0].max_addr));
}

/// Reference O(n^2) DBSCAN for cross-checking cluster structure.
std::size_t reference_cluster_count(const std::vector<Addr>& pts,
                                    const DbscanConfig& cfg) {
  const std::size_t n = pts.size();
  auto neighbors = [&](std::size_t i) {
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < n; ++j) {
      const double d = std::abs(static_cast<double>(pts[i]) -
                                static_cast<double>(pts[j]));
      if (d <= cfg.epsilon) out.push_back(j);
    }
    return out;
  };
  std::vector<int> label(n, -2);
  int clusters = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (label[i] != -2) continue;
    auto nb = neighbors(i);
    if (nb.size() < cfg.min_points) {
      label[i] = -1;
      continue;
    }
    const int cid = clusters++;
    label[i] = cid;
    std::vector<std::size_t> stack = nb;
    while (!stack.empty()) {
      const std::size_t q = stack.back();
      stack.pop_back();
      if (label[q] == -1) label[q] = cid;
      if (label[q] != -2) continue;
      label[q] = cid;
      auto qn = neighbors(q);
      if (qn.size() >= cfg.min_points) {
        stack.insert(stack.end(), qn.begin(), qn.end());
      }
    }
  }
  return static_cast<std::size_t>(clusters);
}

TEST(Dbscan, MatchesReferenceOnRandomInputs) {
  Rng rng(99);
  DbscanConfig cfg;
  cfg.epsilon = 4096;
  cfg.min_points = 4;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Addr> pts;
    const int groups = 1 + static_cast<int>(rng.below(6));
    for (int g = 0; g < groups; ++g) {
      const Addr base = rng.below(1ULL << 28);
      const int count = 1 + static_cast<int>(rng.below(30));
      for (int i = 0; i < count; ++i) pts.push_back(base + rng.below(8192));
    }
    const DbscanResult fast = dbscan_addresses(pts, cfg);
    EXPECT_EQ(fast.num_clusters(), reference_cluster_count(pts, cfg))
        << "trial " << trial;
  }
}

TEST(Dbscan, ClusterSizesSumWithNoise) {
  Rng rng(3);
  std::vector<Addr> pts;
  for (int i = 0; i < 500; ++i) pts.push_back(rng.below(1ULL << 24));
  const DbscanResult r = dbscan_addresses(pts, DbscanConfig{});
  std::size_t total = r.noise_count;
  for (const auto& c : r.clusters) total += c.size;
  EXPECT_EQ(total, pts.size());
}

}  // namespace
}  // namespace pacsim
