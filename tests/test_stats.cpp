#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace pacsim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, TracksMeanMinMax) {
  RunningStat s;
  for (double v : {4.0, 2.0, 6.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStat, SingleNegativeValue) {
  RunningStat s;
  s.add(-5.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), -5.0);
}

TEST(RunningStat, Reset) {
  RunningStat s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, EmptyFractions) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_between(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, CountsAndFractions) {
  Histogram h;
  h.add(64, 3);
  h.add(128, 1);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.at(64), 3u);
  EXPECT_EQ(h.at(256), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(64), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(128), 0.25);
}

TEST(Histogram, FractionBetweenInclusive) {
  Histogram h;
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  EXPECT_DOUBLE_EQ(h.fraction_between(2, 3), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_between(1, 4), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_between(5, 9), 0.0);
}

TEST(Histogram, WeightedMean) {
  Histogram h;
  h.add(10, 1);
  h.add(20, 3);
  EXPECT_DOUBLE_EQ(h.mean(), 17.5);
}

TEST(Histogram, NegativeBuckets) {
  Histogram h;
  h.add(-5, 2);
  h.add(5, 2);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_between(-5, 0), 0.5);
}

TEST(PercentHelpers, Reduction) {
  EXPECT_DOUBLE_EQ(percent_reduction(100.0, 40.0), 60.0);
  EXPECT_DOUBLE_EQ(percent_reduction(100.0, 120.0), -20.0);
  EXPECT_DOUBLE_EQ(percent_reduction(0.0, 10.0), 0.0);  // guarded
}

TEST(PercentHelpers, Improvement) {
  EXPECT_DOUBLE_EQ(percent_improvement(200.0, 170.0), 15.0);
  EXPECT_DOUBLE_EQ(percent_improvement(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace pacsim
