// Fuzz-lite property tests for the binary snapshot layer
// (common/serialize.hpp): random payloads round-trip exactly, every
// truncated prefix of a valid stream throws SnapshotError (never crashes,
// never half-reads), adversarial length prefixes cannot wrap the bounds
// check, and error messages carry the byte offset and section tag a
// minimized checkpoint repro needs.
#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace pacsim {
namespace {

// A random record exercising every primitive plus section tags; `ops`
// records the write order so the reader can replay it field-for-field.
enum class Field : std::uint8_t { kU8, kB, kU32, kU64, kI64, kF64, kStr, kTag };

struct RandomPayload {
  std::vector<Field> ops;
  std::vector<std::uint64_t> ints;   // one entry per integer-ish field
  std::vector<double> doubles;       // one entry per f64
  std::vector<std::string> strings;  // one entry per str
  std::size_t tags = 0;              // tag fields cycle HDRX/CORE/VLT0/STAT
};

RandomPayload random_payload(Rng& rng, std::size_t fields) {
  RandomPayload p;
  for (std::size_t i = 0; i < fields; ++i) {
    const auto f = static_cast<Field>(rng.below(8));
    p.ops.push_back(f);
    switch (f) {
      case Field::kU8:
        p.ints.push_back(rng.below(256));
        break;
      case Field::kB:
        p.ints.push_back(rng.below(2));
        break;
      case Field::kU32:
        p.ints.push_back(rng.next() & 0xFFFFFFFFULL);
        break;
      case Field::kU64:
      case Field::kI64:
        p.ints.push_back(rng.next());
        break;
      case Field::kF64: {
        // Mix of ordinary magnitudes and exact bit patterns; NaN excluded
        // only because NaN != NaN would complicate the comparison, the
        // format itself is bit-transparent.
        const double candidates[] = {0.0, -0.0, 1.5, -3.25e10,
                                     std::numeric_limits<double>::infinity(),
                                     rng.uniform() * 1e18};
        p.doubles.push_back(candidates[rng.below(6)]);
        break;
      }
      case Field::kStr: {
        std::string s(rng.below(64), '\0');
        for (char& ch : s) ch = static_cast<char>(rng.below(256));
        p.strings.push_back(std::move(s));
        break;
      }
      case Field::kTag:
        ++p.tags;
        break;
    }
  }
  return p;
}

std::string encode(const RandomPayload& p) {
  BinWriter w;
  std::size_t ii = 0;
  std::size_t di = 0;
  std::size_t si = 0;
  std::size_t ti = 0;
  for (const Field f : p.ops) {
    switch (f) {
      case Field::kU8:
        w.u8(static_cast<std::uint8_t>(p.ints[ii++]));
        break;
      case Field::kB:
        w.b(p.ints[ii++] != 0);
        break;
      case Field::kU32:
        w.u32(static_cast<std::uint32_t>(p.ints[ii++]));
        break;
      case Field::kU64:
        w.u64(p.ints[ii++]);
        break;
      case Field::kI64:
        w.i64(static_cast<std::int64_t>(p.ints[ii++]));
        break;
      case Field::kF64:
        w.f64(p.doubles[di++]);
        break;
      case Field::kStr:
        w.str(p.strings[si++]);
        break;
      case Field::kTag:
        switch (ti++ % 4) {
          case 0: w.tag("HDRX"); break;
          case 1: w.tag("CORE"); break;
          case 2: w.tag("VLT0"); break;
          default: w.tag("STAT"); break;
        }
        break;
    }
  }
  return w.buffer();
}

// Replays the payload's field sequence against `r`, checking values when
// `check` is set. Throws SnapshotError out of the reader on a bad stream.
void decode(BinReader& r, const RandomPayload& p, bool check) {
  std::size_t ii = 0;
  std::size_t di = 0;
  std::size_t si = 0;
  std::size_t ti = 0;
  for (const Field f : p.ops) {
    switch (f) {
      case Field::kU8: {
        const std::uint8_t v = r.u8();
        if (check) { EXPECT_EQ(v, static_cast<std::uint8_t>(p.ints[ii])); }
        ++ii;
        break;
      }
      case Field::kB: {
        const bool v = r.b();
        if (check) { EXPECT_EQ(v, p.ints[ii] != 0); }
        ++ii;
        break;
      }
      case Field::kU32: {
        const std::uint32_t v = r.u32();
        if (check) { EXPECT_EQ(v, static_cast<std::uint32_t>(p.ints[ii])); }
        ++ii;
        break;
      }
      case Field::kU64: {
        const std::uint64_t v = r.u64();
        if (check) { EXPECT_EQ(v, p.ints[ii]); }
        ++ii;
        break;
      }
      case Field::kI64: {
        const std::int64_t v = r.i64();
        if (check) { EXPECT_EQ(v, static_cast<std::int64_t>(p.ints[ii])); }
        ++ii;
        break;
      }
      case Field::kF64: {
        const double v = r.f64();
        if (check) { EXPECT_EQ(v, p.doubles[di]); }
        ++di;
        break;
      }
      case Field::kStr: {
        const std::string v = r.str();
        if (check) { EXPECT_EQ(v, p.strings[si]); }
        ++si;
        break;
      }
      case Field::kTag:
        switch (ti++ % 4) {
          case 0: r.tag("HDRX"); break;
          case 1: r.tag("CORE"); break;
          case 2: r.tag("VLT0"); break;
          default: r.tag("STAT"); break;
        }
        break;
    }
  }
}

TEST(SerializeProperty, RandomPayloadsRoundTripExactly) {
  Rng rng(0x5E41A11Ull);
  for (int iter = 0; iter < 200; ++iter) {
    const RandomPayload p = random_payload(rng, 1 + rng.below(40));
    const std::string bytes = encode(p);
    BinReader r(bytes);
    decode(r, p, /*check=*/true);
    EXPECT_TRUE(r.exhausted()) << "iteration " << iter;
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(SerializeProperty, EveryTruncatedPrefixThrowsSnapshotError) {
  Rng rng(0xC0FFEEull);
  for (int iter = 0; iter < 40; ++iter) {
    const RandomPayload p = random_payload(rng, 2 + rng.below(12));
    const std::string bytes = encode(p);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      BinReader r(bytes.substr(0, cut));
      bool threw = false;
      try {
        // The decoder replays the exact field sequence, which needs exactly
        // bytes.size() bytes, so every strict prefix must fail a bounds
        // check. Anything other than SnapshotError escapes the try and
        // fails the test.
        decode(r, p, /*check=*/false);
      } catch (const SnapshotError&) {
        threw = true;
      }
      EXPECT_TRUE(threw) << "cut=" << cut << " of " << bytes.size()
                         << " decoded cleanly";
      EXPECT_LE(r.offset(), cut);  // never reads past the prefix
    }
  }
}

TEST(SerializeProperty, TruncationMidStringThrowsNotCrashes) {
  BinWriter w;
  w.tag("HDRX");
  w.str("hello snapshot world");
  const std::string bytes = w.buffer();
  // Cut inside the string body: length prefix says 20, body is shorter.
  BinReader r(bytes.substr(0, bytes.size() - 5));
  r.tag("HDRX");
  try {
    (void)r.str();
    FAIL() << "read past the truncation point";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated stream"), std::string::npos) << what;
    EXPECT_NE(what.find("need 20 byte(s)"), std::string::npos) << what;
  }
}

TEST(SerializeProperty, AdversarialStringLengthCannotWrapBoundsCheck) {
  // A length prefix near UINT64_MAX must not wrap pos_ + n and "pass".
  BinWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max() - 2);
  w.u8(0xAB);  // one byte of "body"
  BinReader r(w.buffer());
  EXPECT_THROW((void)r.str(), SnapshotError);
}

TEST(SerializeErrors, TruncationMessageCarriesOffsetAndSection) {
  BinWriter w;
  w.tag("CORE");
  w.u32(7);
  BinReader r(w.buffer());
  r.tag("CORE");
  (void)r.u32();
  try {
    (void)r.u64();  // nothing left
    FAIL() << "read past the end";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("at byte offset 8 of 8"), std::string::npos) << what;
    EXPECT_NE(what.find("in section 'CORE'"), std::string::npos) << what;
  }
}

TEST(SerializeErrors, PreTagTruncationSaysBeforeAnySection) {
  BinReader r(std::string("ab"));
  try {
    (void)r.u32();
    FAIL() << "read past the end";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("before any section tag"), std::string::npos) << what;
    EXPECT_NE(what.find("at byte offset 0 of 2"), std::string::npos) << what;
  }
}

TEST(SerializeErrors, TagMismatchNamesBothTagsAndPosition) {
  BinWriter w;
  w.tag("HDRX");
  w.tag("VLT0");
  BinReader r(w.buffer());
  r.tag("HDRX");
  try {
    r.tag("CORE");  // stream actually holds VLT0
    FAIL() << "accepted a mismatched tag";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected section 'CORE'"), std::string::npos) << what;
    EXPECT_NE(what.find("found 'VLT0'"), std::string::npos) << what;
    EXPECT_NE(what.find("at byte offset 4 of 8"), std::string::npos) << what;
    // The previous successful tag is the reader's current section.
    EXPECT_NE(what.find("in section 'HDRX'"), std::string::npos) << what;
  }
}

TEST(SerializeErrors, SectionTracksMostRecentTag) {
  BinWriter w;
  w.tag("HDRX");
  w.u8(1);
  w.tag("STAT");
  BinReader r(w.buffer());
  EXPECT_EQ(r.section(), "");
  r.tag("HDRX");
  EXPECT_EQ(r.section(), "HDRX");
  (void)r.u8();
  r.tag("STAT");
  EXPECT_EQ(r.section(), "STAT");
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace pacsim
