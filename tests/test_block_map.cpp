#include "pac/block_map.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace pacsim {
namespace {

TEST(BlockMap, StartsClear) {
  BlockMap m;
  EXPECT_FALSE(m.any());
  EXPECT_EQ(m.count(), 0u);
  for (unsigned i = 0; i < 256; ++i) EXPECT_FALSE(m.test(i));
}

TEST(BlockMap, SetAndTestAcrossWords) {
  BlockMap m;
  for (unsigned b : {0u, 63u, 64u, 127u, 128u, 255u}) {
    m.set(b);
    EXPECT_TRUE(m.test(b));
  }
  EXPECT_EQ(m.count(), 6u);
  EXPECT_FALSE(m.test(1));
  EXPECT_FALSE(m.test(65));
}

TEST(BlockMap, SetIsIdempotent) {
  BlockMap m;
  m.set(10);
  m.set(10);
  EXPECT_EQ(m.count(), 1u);
}

TEST(BlockMap, PaperFig5BlockIdExample) {
  // Fig 5(a): block id = physical-address bits 5..11 at 64 B granularity;
  // request at block 1 of its page sets bit 1.
  BlockMap m;
  const Addr paddr = (0x9ULL << kPageShift) | (1 << 6);
  m.set(block_in_page(paddr));
  EXPECT_TRUE(m.test(1));
  EXPECT_EQ(m.count(), 1u);
}

TEST(BlockMap, ChunkExtraction4Bit) {
  BlockMap m;
  m.set(1);
  m.set(2);   // chunk 0 = 0110
  m.set(9);   // chunk 2 bit 1
  EXPECT_EQ(m.chunk(0, 4), 0b0110);
  EXPECT_EQ(m.chunk(1, 4), 0b0000);
  EXPECT_EQ(m.chunk(2, 4), 0b0010);
}

TEST(BlockMap, ChunkExtraction16Bit) {
  BlockMap m;
  for (unsigned b = 16; b < 32; ++b) m.set(b);
  EXPECT_EQ(m.chunk(0, 16), 0u);
  EXPECT_EQ(m.chunk(1, 16), 0xFFFFu);
}

TEST(BlockMap, ChunksTileTheMap) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    BlockMap m;
    std::vector<bool> ref(64, false);
    for (int i = 0; i < 20; ++i) {
      const unsigned b = static_cast<unsigned>(rng.below(64));
      m.set(b);
      ref[b] = true;
    }
    unsigned rebuilt_count = 0;
    for (unsigned c = 0; c < 16; ++c) {
      const std::uint16_t bits = m.chunk(c, 4);
      for (unsigned i = 0; i < 4; ++i) {
        const bool set = (bits >> i) & 1;
        EXPECT_EQ(set, ref[c * 4 + i]);
        rebuilt_count += set;
      }
    }
    EXPECT_EQ(rebuilt_count, m.count());
  }
}

TEST(BlockMap, ClearResets) {
  BlockMap m;
  m.set(200);
  m.clear();
  EXPECT_FALSE(m.any());
  EXPECT_FALSE(m.test(200));
}

TEST(BlockMap, Equality) {
  BlockMap a, b;
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pacsim
