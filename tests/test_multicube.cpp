// Multi-cube interconnect: the cubes=1 wrapper-passthrough differential
// (wrapped MultiCubeBackend must be bit-identical to the bare backend for
// every controller on every substrate), fast-forward differentials on
// multi-cube chain and mesh fabrics, fault-injected + verified multi-cube
// runs, checkpoint round-trips across the fabric, and the Zipf traffic
// generator's distribution properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "noc/traffic_gen.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/sharded_system.hpp"
#include "sim/system.hpp"

namespace pacsim {
namespace {

// Force an 8-thread budget for this binary (same rationale as the sharded
// suite): on a single-CPU host the oversubscription clamp would route the
// threads=2 differential through the serial path and the fork-join workers
// this suite's thread-sanitizer coverage needs would never exist.
const int g_forced_thread_budget = [] {
  ::setenv("PACSIM_HW_THREADS", "8", /*overwrite=*/0);
  return 0;
}();

// ---------------------------------------------------------------------------
// Shared helpers (same trace shape as the sharded/fast-forward suites).
// ---------------------------------------------------------------------------

/// A randomized trace mixing every op kind: sequential load bursts exercise
/// coalescing, atomics and fences hit the ordered paths, long computes
/// create the idle windows fast-forwarding and checkpoints land in.
Trace random_trace(Rng& rng, std::size_t ops) {
  Trace t;
  Addr cursor = 0x10000000 + rng.below(8) * 0x400000;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t pick = rng.below(100);
    if (pick < 40) {
      if (rng.below(8) == 0) cursor = 0x10000000 + rng.below(64) * 0x11000;
      t.push_back({cursor, 8, OpKind::kLoad});
      cursor += 64;
    } else if (pick < 55) {
      t.push_back({cursor + rng.below(16) * 64, 8, OpKind::kStore});
    } else if (pick < 58) {
      t.push_back({0x30000000 + rng.below(32) * 4096, 8, OpKind::kAtomic});
    } else if (pick < 60) {
      t.push_back({0, 0, OpKind::kFence});
    } else if (pick < 90) {
      t.push_back({0, 1 + rng.below(8), OpKind::kCompute});
    } else {
      t.push_back({0, 50 + rng.below(400), OpKind::kCompute});
    }
  }
  return t;
}

std::vector<Trace> make_traces(std::uint64_t seed, std::uint32_t cores,
                               std::size_t ops) {
  Rng rng(seed);
  std::vector<Trace> traces;
  traces.reserve(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    traces.push_back(random_trace(rng, ops));
  }
  return traces;
}

/// Multi-cube traffic spanning all cubes, from the bench's own front-end.
/// Wide compute gaps (gap_max) carve out the idle windows fast-forwarding
/// jumps over and quiescent epoch boundaries land in.
std::vector<Trace> cube_traces(std::uint32_t cubes, double zipf,
                               std::uint32_t cores, std::uint32_t ops,
                               std::uint32_t gap_max = 8) {
  TrafficConfig t;
  t.cubes = cubes;
  t.zipf = zipf;
  t.num_cores = cores;
  t.ops_per_core = ops;
  t.gap_max_cycles = gap_max;
  return generate_traffic(t);
}

SystemConfig base_config(CoalescerKind kind, BackendKind backend) {
  SystemConfig cfg;
  cfg.coalescer = kind;
  cfg.backend = backend;
  cfg.num_cores = 4;
  cfg.identity_paging = true;  // cube bits must survive translation
  cfg.record_raw_trace = true;
  cfg.max_cycles = 50'000'000;
  return cfg;
}

void expect_stat_eq(const RunningStat& a, const RunningStat& b,
                    const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.sum(), b.sum()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

/// Field-by-field identity, including metrics the JSON report omits. The
/// interconnect block itself is excluded: the wrapped run reports one and
/// the bare run does not, which is exactly what the passthrough test spells
/// out separately.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.core_stall_cycles, b.core_stall_cycles);
  EXPECT_EQ(a.l1_hits, b.l1_hits);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
  EXPECT_EQ(a.llc_hits, b.llc_hits);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);

  EXPECT_EQ(a.coal.raw_requests, b.coal.raw_requests);
  EXPECT_EQ(a.coal.coalesced_away, b.coal.coalesced_away);
  EXPECT_EQ(a.coal.issued_requests, b.coal.issued_requests);
  EXPECT_EQ(a.coal.issued_payload_bytes, b.coal.issued_payload_bytes);
  EXPECT_EQ(a.coal.comparisons, b.coal.comparisons);
  EXPECT_EQ(a.coal.atomics, b.coal.atomics);
  EXPECT_EQ(a.coal.fences, b.coal.fences);
  EXPECT_EQ(a.coal.request_size_bytes.buckets(),
            b.coal.request_size_bytes.buckets());

  EXPECT_EQ(a.hmc.requests, b.hmc.requests);
  EXPECT_EQ(a.hmc.row_accesses, b.hmc.row_accesses);
  EXPECT_EQ(a.hmc.bank_conflicts, b.hmc.bank_conflicts);
  EXPECT_EQ(a.hmc.conflict_wait_cycles, b.hmc.conflict_wait_cycles);
  EXPECT_EQ(a.hmc.refreshes, b.hmc.refreshes);
  EXPECT_EQ(a.hmc.row_hits, b.hmc.row_hits);
  EXPECT_EQ(a.hmc.row_misses, b.hmc.row_misses);
  EXPECT_EQ(a.hmc.local_routes, b.hmc.local_routes);
  EXPECT_EQ(a.hmc.remote_routes, b.hmc.remote_routes);
  EXPECT_EQ(a.hmc.request_flits, b.hmc.request_flits);
  EXPECT_EQ(a.hmc.response_flits, b.hmc.response_flits);
  EXPECT_EQ(a.hmc.payload_bytes, b.hmc.payload_bytes);
  expect_stat_eq(a.hmc.access_latency, b.hmc.access_latency,
                 "hmc.access_latency");

  ASSERT_EQ(a.energy.size(), b.energy.size());
  for (std::size_t op = 0; op < a.energy.size(); ++op) {
    EXPECT_EQ(a.energy[op], b.energy[op]) << "energy op " << op;
  }
  EXPECT_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.raw_trace, b.raw_trace);

  ASSERT_EQ(a.has_pac, b.has_pac);
  if (a.has_pac) {
    EXPECT_EQ(a.pac.flushed_streams, b.pac.flushed_streams);
    EXPECT_EQ(a.pac.timeout_flushes, b.pac.timeout_flushes);
    EXPECT_EQ(a.pac.fence_flushes, b.pac.fence_flushes);
    EXPECT_EQ(a.pac.mshr_merges, b.pac.mshr_merges);
    EXPECT_EQ(a.pac.stream_occupancy.buckets(),
              b.pac.stream_occupancy.buckets());
    expect_stat_eq(a.pac.stage2_latency, b.pac.stage2_latency,
                   "pac.stage2_latency");
    expect_stat_eq(a.pac.request_latency, b.pac.request_latency,
                   "pac.request_latency");
  }

  ASSERT_EQ(a.verification.enabled, b.verification.enabled);
  if (a.verification.enabled) {
    EXPECT_EQ(a.verification.issued, b.verification.issued);
    EXPECT_EQ(a.verification.retired, b.verification.retired);
    EXPECT_EQ(a.verification.merged, b.verification.merged);
    EXPECT_EQ(a.verification.responses, b.verification.responses);
  }
}

// ---------------------------------------------------------------------------
// Satellite: cubes=1 wrapped fabric is bit-identical to the bare backend.
// ---------------------------------------------------------------------------

struct CubeCase {
  CoalescerKind kind;
  BackendKind backend = BackendKind::kHmc;
};

class SingleCubePassthrough : public ::testing::TestWithParam<CubeCase> {};

// The passthrough claim behind every other multi-cube result: wrapping one
// cube in the fabric adds no cycles, no reordering, no extra fault draws -
// the differential proves the wrapper inert before the multi-cube sweeps
// attribute anything to the interconnect.
TEST_P(SingleCubePassthrough, WrappedEqualsBare) {
  const CubeCase c = GetParam();
  SystemConfig cfg = base_config(c.kind, c.backend);
  const std::vector<Trace> traces = make_traces(0xC0BE, cfg.num_cores, 600);

  const RunResult bare = simulate(cfg, traces);

  cfg.noc.wrap_single = true;  // cubes stays 1: fabric in passthrough mode
  const RunResult wrapped = simulate(cfg, traces);

  expect_identical(wrapped, bare);
  // The wrapper reports an interconnect block - but one with zero link
  // traffic: no links exist and nothing was ever serialized.
  ASSERT_TRUE(wrapped.has_noc);
  EXPECT_FALSE(bare.has_noc);
  EXPECT_EQ(wrapped.noc.cubes, 1u);
  EXPECT_EQ(wrapped.noc.req_packets, 0u);
  EXPECT_EQ(wrapped.noc.rsp_packets, 0u);
  EXPECT_EQ(wrapped.noc.nack_packets, 0u);
  EXPECT_EQ(wrapped.noc.link_crc_nacks, 0u);
  EXPECT_EQ(wrapped.noc.ingress_retries, 0u);
  EXPECT_TRUE(wrapped.noc.links.empty());
}

// Passthrough must hold under fault injection too: the wrapper takes no
// fabric-level CRC draws at cubes=1, so the fault stream the retry layer
// sees is exactly the bare backend's.
TEST_P(SingleCubePassthrough, WrappedEqualsBareUnderFaults) {
  const CubeCase c = GetParam();
  SystemConfig cfg = base_config(c.kind, c.backend);
  cfg.verify.level = VerifyLevel::kCounters;
  cfg.fault.link_error_rate = 2e-3;
  cfg.fault.response_drop_rate = 1e-3;
  const std::vector<Trace> traces = make_traces(0xFA17, cfg.num_cores, 600);

  const RunResult bare = simulate(cfg, traces);
  cfg.noc.wrap_single = true;
  const RunResult wrapped = simulate(cfg, traces);

  expect_identical(wrapped, bare);
  ASSERT_TRUE(bare.resilience.enabled);
  EXPECT_EQ(wrapped.resilience.fault.link_errors,
            bare.resilience.fault.link_errors);
  EXPECT_EQ(wrapped.resilience.retry.retransmissions,
            bare.resilience.retry.retransmissions);
  EXPECT_EQ(wrapped.noc.link_crc_nacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndBackends, SingleCubePassthrough,
    ::testing::Values(CubeCase{CoalescerKind::kDirect},
                      CubeCase{CoalescerKind::kMshrDmc},
                      CubeCase{CoalescerKind::kSortingDmc},
                      CubeCase{CoalescerKind::kPac},
                      CubeCase{CoalescerKind::kDirect, BackendKind::kHbm},
                      CubeCase{CoalescerKind::kMshrDmc, BackendKind::kHbm},
                      CubeCase{CoalescerKind::kSortingDmc, BackendKind::kHbm},
                      CubeCase{CoalescerKind::kPac, BackendKind::kHbm},
                      CubeCase{CoalescerKind::kDirect, BackendKind::kDdr},
                      CubeCase{CoalescerKind::kMshrDmc, BackendKind::kDdr},
                      CubeCase{CoalescerKind::kSortingDmc, BackendKind::kDdr},
                      CubeCase{CoalescerKind::kPac, BackendKind::kDdr}),
    [](const auto& info) {
      std::string n(to_string(info.param.kind));
      if (info.param.backend != BackendKind::kHmc) {
        n += "_" + std::string(to_string(info.param.backend));
      }
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// Fast-forward differential on multi-cube fabrics.
// ---------------------------------------------------------------------------

// The tentpole timing claim: next_event_cycle() across links, transit
// queues, and per-cube backends is never late, so event-horizon jumps are
// bit-identical to the naive per-cycle loop on a 4-cube chain and mesh.
TEST(MultiCube, FastForwardMatchesNaivePerCycleLoop) {
  for (const Topology topo : {Topology::kChain, Topology::kMesh}) {
    SCOPED_TRACE(std::string("topology ") + std::string(to_string(topo)));
    SystemConfig cfg = base_config(CoalescerKind::kPac, BackendKind::kHmc);
    cfg.noc.cubes = 4;
    cfg.noc.topology = topo;
    const std::vector<Trace> traces =
        cube_traces(4, /*zipf=*/0.8, cfg.num_cores, 900);

    cfg.enable_fast_forward = false;
    const RunResult naive = simulate(cfg, traces);
    cfg.enable_fast_forward = true;
    const RunResult ff = simulate(cfg, traces);

    expect_identical(ff, naive);
    // Both runs are wrapped, so byte-equality covers the interconnect block
    // (per-link busy cycles, queue-delay histograms) too.
    EXPECT_EQ(
        run_report_json("d", cfg.coalescer, ff, /*include_throughput=*/false),
        run_report_json("d", cfg.coalescer, naive,
                        /*include_throughput=*/false));
    ASSERT_TRUE(ff.has_noc);
    EXPECT_GT(ff.noc.req_packets, 0u);
    EXPECT_GT(ff.noc.rsp_packets, 0u);
  }
}

// Traffic to cubes behind at least one link must actually use the links,
// and every cube must see requests under uniform traffic.
TEST(MultiCube, UniformTrafficReachesEveryCubeOverLinks) {
  SystemConfig cfg = base_config(CoalescerKind::kMshrDmc, BackendKind::kHmc);
  cfg.noc.cubes = 4;
  const RunResult r =
      simulate(cfg, cube_traces(4, /*zipf=*/0.0, cfg.num_cores, 800));

  ASSERT_TRUE(r.has_noc);
  ASSERT_EQ(r.noc.cube_requests.size(), 4u);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_GT(r.noc.cube_requests[c], 0u) << "cube " << c;
  }
  // Chain with 4 cubes: 3 forward + 3 reverse links, all busy.
  ASSERT_EQ(r.noc.links.size(), 6u);
  for (const LinkStats& l : r.noc.links) {
    EXPECT_GT(l.busy_cycles, 0u) << l.label;
    EXPECT_GT(l.packets, 0u) << l.label;
  }
}

// Mesh routing: a 2x2 mesh reaches cube 3 over two hops (XY through cube 1),
// never over a diagonal; link labels pin the expected edges.
TEST(MultiCube, MeshRoutesXYThroughIntermediates) {
  SystemConfig cfg = base_config(CoalescerKind::kDirect, BackendKind::kHmc);
  cfg.noc.cubes = 4;
  cfg.noc.topology = Topology::kMesh;
  const RunResult r =
      simulate(cfg, cube_traces(4, /*zipf=*/0.0, cfg.num_cores, 600));

  ASSERT_TRUE(r.has_noc);
  EXPECT_EQ(r.noc.topology, "mesh");
  std::vector<std::string> labels;
  labels.reserve(r.noc.links.size());
  for (const LinkStats& l : r.noc.links) labels.push_back(l.label);
  // XY from host corner c0: x-hop c0->1, y-hops c0->2 and c1->3. No c0->3.
  EXPECT_NE(std::find(labels.begin(), labels.end(), "c0->1"), labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "c0->2"), labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "c1->3"), labels.end());
  EXPECT_EQ(std::find(labels.begin(), labels.end(), "c0->3"), labels.end());
}

// ---------------------------------------------------------------------------
// Fault injection + verification + sharded execution on multi-cube configs.
// ---------------------------------------------------------------------------

// Full-observability multi-cube run: link CRC NACKs from the fabric feed the
// same DevicePort retry machinery as vault-level faults, the verifier's
// conservation ledger must balance, and the threaded epoch scheduler must
// reproduce the serial result bit-for-bit.
TEST(MultiCube, FaultInjectedVerifiedRunIsThreadInvariant) {
  SystemConfig cfg = base_config(CoalescerKind::kPac, BackendKind::kHmc);
  cfg.noc.cubes = 4;
  cfg.verify.level = VerifyLevel::kCounters;
  cfg.fault.link_error_rate = 2e-3;
  cfg.fault.response_drop_rate = 1e-3;
  const std::vector<Trace> traces =
      cube_traces(4, /*zipf=*/0.6, cfg.num_cores, 900);
  cfg.exec.shards = 2;

  cfg.exec.threads = 1;
  const RunResult serial = simulate(cfg, traces);
  cfg.exec.threads = 2;
  const RunResult threaded = simulate(cfg, traces);

  expect_identical(threaded, serial);
  ASSERT_TRUE(serial.verification.enabled);
  ASSERT_TRUE(serial.resilience.enabled);
  EXPECT_GT(serial.resilience.retry.retransmissions, 0u);
  ASSERT_TRUE(serial.has_noc);
  EXPECT_GT(serial.noc.link_crc_nacks, 0u)
      << "no fabric CRC hit - raise ops or link_error_rate";
  EXPECT_EQ(threaded.noc.link_crc_nacks, serial.noc.link_crc_nacks);
  EXPECT_EQ(run_report_json("d", cfg.coalescer, threaded,
                            /*include_throughput=*/false),
            run_report_json("d", cfg.coalescer, serial,
                            /*include_throughput=*/false));
}

// ---------------------------------------------------------------------------
// Checkpoint/restore across the fabric.
// ---------------------------------------------------------------------------

std::vector<std::string> snapshots_in(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".pacsnap") out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    auto cycle = [](const std::string& p) {
      const auto base = std::filesystem::path(p).stem().string();
      return std::stoull(base.substr(base.find('-') + 1));
    };
    return cycle(a) < cycle(b);
  });
  return out;
}

// A run interrupted at a quiescent epoch boundary and restored must finish
// byte-identically - including per-link occupancy counters, queue-delay
// histograms, and per-cube request tallies serialized by the NOCB record.
TEST(MultiCube, CheckpointRestoreRoundTripsTheFabric) {
  const auto dir_path =
      std::filesystem::path(::testing::TempDir()) / "pacsim_noc_ckpt";
  std::filesystem::remove_all(dir_path);
  const std::string dir = dir_path.string();

  SystemConfig cfg = base_config(CoalescerKind::kPac, BackendKind::kHmc);
  cfg.noc.cubes = 2;
  // One core per shard with compute gaps wider than an epoch: most gaps
  // contain a quiescent boundary, giving many mid-run snapshot points.
  cfg.num_cores = 2;
  cfg.exec.shards = 2;
  cfg.exec.threads = 2;
  cfg.exec.epoch_cycles = 1024;
  const std::vector<Trace> traces =
      cube_traces(2, /*zipf=*/0.5, cfg.num_cores, 600, /*gap_max=*/2500);

  cfg.exec.checkpoint_dir = dir;
  const RunResult full = simulate(cfg, traces);
  const std::vector<std::string> snaps = snapshots_in(dir);
  ASSERT_EQ(snaps.size(), full.exec.checkpoints_written);
  ASSERT_GE(snaps.size(), 2u)
      << "no mid-run quiescent epoch boundary - tune epoch_cycles/trace mix";

  SystemConfig rcfg = cfg;
  rcfg.exec.checkpoint_dir.clear();
  rcfg.exec.restore_path = snaps[snaps.size() / 2];
  const RunResult resumed = simulate(rcfg, traces);

  EXPECT_EQ(run_report_json("d", cfg.coalescer, resumed,
                            /*include_throughput=*/false),
            run_report_json("d", cfg.coalescer, full,
                            /*include_throughput=*/false));
  EXPECT_EQ(resumed.cycles, full.cycles);
  ASSERT_TRUE(resumed.has_noc);
  EXPECT_EQ(resumed.noc.req_packets, full.noc.req_packets);
  EXPECT_EQ(resumed.noc.rsp_packets, full.noc.rsp_packets);
  EXPECT_EQ(resumed.noc.cube_requests, full.noc.cube_requests);
  ASSERT_EQ(resumed.noc.links.size(), full.noc.links.size());
  for (std::size_t i = 0; i < full.noc.links.size(); ++i) {
    EXPECT_EQ(resumed.noc.links[i].busy_cycles,
              full.noc.links[i].busy_cycles)
        << full.noc.links[i].label;
    EXPECT_EQ(resumed.noc.links[i].bytes, full.noc.links[i].bytes)
        << full.noc.links[i].label;
  }
  EXPECT_TRUE(resumed.exec.restored);
}

// ---------------------------------------------------------------------------
// Satellite: Zipf traffic generator distribution properties.
// ---------------------------------------------------------------------------

TEST(ZipfPicker, ZeroSkewIsUniform) {
  const ZipfPicker p(8, 0.0, 7);
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(p.rank_probability(r), 1.0 / 8.0, 1e-12) << "rank " << r;
  }
}

TEST(ZipfPicker, RankProbabilitiesDecreaseWithRankAndGrowWithSkew) {
  const ZipfPicker mild(8, 0.8, 0);
  const ZipfPicker sharp(8, 1.6, 0);
  for (std::uint32_t r = 1; r < 8; ++r) {
    EXPECT_LT(mild.rank_probability(r), mild.rank_probability(r - 1))
        << "rank " << r;
    EXPECT_LT(sharp.rank_probability(r), sharp.rank_probability(r - 1))
        << "rank " << r;
  }
  // Sharper skew concentrates more mass on the hot rank.
  EXPECT_GT(sharp.rank_probability(0), mild.rank_probability(0));
  // Probabilities are a distribution at every skew.
  for (const ZipfPicker* p : {&mild, &sharp}) {
    double sum = 0.0;
    for (std::uint32_t r = 0; r < 8; ++r) sum += p->rank_probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(ZipfPicker, HotRankMapsToRequestedCube) {
  const ZipfPicker p(8, 1.2, 5);
  EXPECT_EQ(p.cube_of_rank(0), 5u);
  EXPECT_EQ(p.cube_of_rank(1), 6u);
  EXPECT_EQ(p.cube_of_rank(3), 0u);  // wraps past cube 7
}

TEST(ZipfPicker, EmpiricalDrawsMatchRankOrder) {
  const std::uint32_t cubes = 4;
  const ZipfPicker p(cubes, 1.2, cubes - 1);
  Rng rng(0xD1CE);
  std::vector<std::uint64_t> counts(cubes, 0);
  constexpr std::uint64_t kDraws = 200'000;
  for (std::uint64_t i = 0; i < kDraws; ++i) ++counts[p.pick(rng)];
  // Hot cube (rank 0 = cube 3) beats every other; counts follow rank order.
  for (std::uint32_t r = 1; r < cubes; ++r) {
    EXPECT_GT(counts[p.cube_of_rank(r - 1)], counts[p.cube_of_rank(r)])
        << "rank " << r;
  }
  // And the hot-cube share tracks the analytic probability within noise.
  const double hot_share =
      static_cast<double>(counts[cubes - 1]) / static_cast<double>(kDraws);
  EXPECT_NEAR(hot_share, p.rank_probability(0), 0.01);
}

TEST(TrafficGen, DeterministicPerSeedAndSensitiveToIt) {
  TrafficConfig cfg;
  cfg.cubes = 4;
  cfg.zipf = 1.2;
  cfg.num_cores = 3;
  cfg.ops_per_core = 2'000;
  const TraceSet a = generate_traffic(cfg);
  const TraceSet b = generate_traffic(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) EXPECT_EQ(a[c], b[c]);

  cfg.seed ^= 1;
  const TraceSet other = generate_traffic(cfg);
  EXPECT_NE(a[0], other[0]);
}

TEST(TrafficGen, AddressesStayInsideTheShardedSpace) {
  TrafficConfig cfg;
  cfg.cubes = 8;
  cfg.zipf = 0.0;
  cfg.num_cores = 2;
  cfg.ops_per_core = 4'000;
  const std::uint64_t limit = cfg.cube_capacity_bytes * cfg.cubes;
  std::vector<bool> cube_seen(cfg.cubes, false);
  for (const Trace& t : generate_traffic(cfg)) {
    for (const TraceOp& op : t) {
      if (op.kind != OpKind::kLoad && op.kind != OpKind::kStore) continue;
      ASSERT_LT(op.vaddr, limit);
      cube_seen[op.vaddr / cfg.cube_capacity_bytes] = true;
    }
  }
  for (std::uint32_t c = 0; c < cfg.cubes; ++c) {
    EXPECT_TRUE(cube_seen[c]) << "uniform traffic never reached cube " << c;
  }
}

}  // namespace
}  // namespace pacsim
