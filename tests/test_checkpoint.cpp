// Checkpoint/restore: serializer unit tests, snapshot round-trips (an
// interrupted run restored from a mid-run snapshot finishes bit-identically
// to the uninterrupted run, including verifier counters and resilience
// stats), header validation, and the atomic_file durability error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/sharded_system.hpp"

namespace pacsim {
namespace {

// ---------------------------------------------------------------------------
// Serializer unit tests.
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTripsEveryPrimitive) {
  BinWriter w;
  w.u8(0xAB);
  w.b(true);
  w.b(false);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.str("hello\0world");  // literal truncates at NUL; see binary blob below
  w.str(std::string("\x00\xFF\x7F", 3));
  w.tag("TEST");

  BinReader r(w.take());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not value, survives
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string("\x00\xFF\x7F", 3));
  EXPECT_NO_THROW(r.tag("TEST"));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TagMismatchThrows) {
  BinWriter w;
  w.tag("AAAA");
  BinReader r(w.take());
  EXPECT_THROW(r.tag("BBBB"), SnapshotError);
}

TEST(Serialize, TruncatedStreamThrows) {
  BinWriter w;
  w.u64(7);
  std::string bytes = w.take();
  bytes.resize(bytes.size() - 1);
  BinReader r(std::move(bytes));
  EXPECT_THROW(r.u64(), SnapshotError);

  BinWriter w2;
  w2.str("long string payload");
  std::string bytes2 = w2.take();
  bytes2.resize(bytes2.size() - 3);
  BinReader r2(std::move(bytes2));
  EXPECT_THROW(r2.str(), SnapshotError);
}

TEST(Serialize, StatsRoundTripBitExact) {
  RunningStat s;
  s.add(1.5);
  s.add(-2.25);
  s.add(1e18);
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(700);
  BinWriter w;
  s.checkpoint_save(w);
  h.checkpoint_save(w);
  BinReader r(w.take());
  RunningStat s2;
  Histogram h2;
  s2.checkpoint_load(r);
  h2.checkpoint_load(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(s2.count(), s.count());
  EXPECT_EQ(s2.sum(), s.sum());
  EXPECT_EQ(s2.min(), s.min());
  EXPECT_EQ(s2.max(), s.max());
  EXPECT_EQ(h2.buckets(), h.buckets());
  EXPECT_EQ(h2.total(), h.total());
}

TEST(Serialize, RngStateRoundTripContinuesStream) {
  Rng rng(0xFEED);
  (void)rng.below(1000);
  (void)rng.below(1000);
  const Rng::State mid = rng.state();
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(rng.below(1'000'000));
  Rng resumed(1);  // different seed; state install must fully override
  resumed.set_state(mid);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(resumed.below(1'000'000), expect[i]) << "draw " << i;
  }
}

// ---------------------------------------------------------------------------
// System-level snapshot round-trip.
// ---------------------------------------------------------------------------

Trace random_trace(Rng& rng, std::size_t ops) {
  Trace t;
  Addr cursor = 0x10000000 + rng.below(8) * 0x400000;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t pick = rng.below(100);
    if (pick < 40) {
      if (rng.below(8) == 0) cursor = 0x10000000 + rng.below(64) * 0x11000;
      t.push_back({cursor, 8, OpKind::kLoad});
      cursor += 64;
    } else if (pick < 55) {
      t.push_back({cursor + rng.below(16) * 64, 8, OpKind::kStore});
    } else if (pick < 58) {
      t.push_back({0x30000000 + rng.below(32) * 4096, 8, OpKind::kAtomic});
    } else if (pick < 60) {
      t.push_back({0, 0, OpKind::kFence});
    } else if (pick < 85) {
      t.push_back(
          {0, static_cast<std::uint32_t>(1 + rng.below(8)), OpKind::kCompute});
    } else {
      // Long computes: wide quiescent windows for epoch boundaries to land
      // in, so checkpoint attempts actually capture.
      t.push_back({0, static_cast<std::uint32_t>(100 + rng.below(600)),
                   OpKind::kCompute});
    }
  }
  return t;
}

std::vector<Trace> make_traces(std::uint64_t seed, std::uint32_t cores,
                               std::size_t ops) {
  Rng rng(seed);
  std::vector<Trace> traces;
  traces.reserve(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    traces.push_back(random_trace(rng, ops));
  }
  return traces;
}

/// Full-observability config: verifier counters and fault injection on, so
/// the round-trip must preserve their state too. Small epochs give many
/// snapshot opportunities.
SystemConfig checkpoint_config(BackendKind backend = BackendKind::kHmc) {
  SystemConfig cfg;
  cfg.coalescer = CoalescerKind::kPac;
  cfg.backend = backend;
  cfg.num_cores = 4;
  cfg.record_raw_trace = true;
  cfg.max_cycles = 50'000'000;
  cfg.verify.level = VerifyLevel::kCounters;
  cfg.fault.link_error_rate = 2e-3;
  cfg.fault.response_drop_rate = 1e-3;
  cfg.exec.shards = 2;
  cfg.exec.threads = 2;
  cfg.exec.epoch_cycles = 2048;
  return cfg;
}

std::vector<std::string> snapshots_in(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".pacsnap") out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    // ckpt-<cycle>.pacsnap: numeric cycle order, not lexicographic.
    auto cycle = [](const std::string& p) {
      const auto base = std::filesystem::path(p).stem().string();
      return std::stoull(base.substr(base.find('-') + 1));
    };
    return cycle(a) < cycle(b);
  });
  return out;
}

// Deliberately does NOT create the directory: checkpoint= must work against
// a fresh path, exactly like jsondir= (the run creates it on demand).
std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(Checkpoint, RestoredRunFinishesBitIdentically) {
  const std::string dir = fresh_dir("pacsim_ckpt_roundtrip");
  SystemConfig cfg = checkpoint_config();
  const std::vector<Trace> traces = make_traces(0xACE, cfg.num_cores, 900);

  // Uninterrupted run, writing snapshots along the way (snapshot capture is
  // read-only, so it cannot perturb the run it observes).
  cfg.exec.checkpoint_dir = dir;
  const RunResult full = simulate(cfg, traces);
  const std::vector<std::string> snaps = snapshots_in(dir);
  ASSERT_EQ(snaps.size(), full.exec.checkpoints_written);
  ASSERT_GE(snaps.size(), 2u)
      << "no mid-run quiescent epoch boundary - tune epoch_cycles/trace mix";

  // Checkpointing itself must not change results vs. a plain run.
  SystemConfig plain = cfg;
  plain.exec.checkpoint_dir.clear();
  const RunResult undisturbed = simulate(plain, traces);
  EXPECT_EQ(run_report_json("d", cfg.coalescer, full,
                            /*include_throughput=*/false),
            run_report_json("d", cfg.coalescer, undisturbed,
                            /*include_throughput=*/false));

  // "Kill" the run at a mid-run snapshot and resume: the restored run must
  // finish byte-identically to the uninterrupted one - verifier counters,
  // resilience stats, energies and all.
  for (const std::string& snap :
       {snaps.front(), snaps[snaps.size() / 2]}) {
    SCOPED_TRACE("restore from " + snap);
    SystemConfig rcfg = cfg;
    rcfg.exec.checkpoint_dir.clear();
    rcfg.exec.restore_path = snap;
    const RunResult resumed = simulate(rcfg, traces);
    EXPECT_EQ(run_report_json("d", cfg.coalescer, resumed,
                              /*include_throughput=*/false),
              run_report_json("d", cfg.coalescer, full,
                              /*include_throughput=*/false));
    EXPECT_EQ(resumed.cycles, full.cycles);
    EXPECT_EQ(resumed.verification.issued, full.verification.issued);
    EXPECT_EQ(resumed.verification.retired, full.verification.retired);
    EXPECT_EQ(resumed.resilience.fault.link_errors,
              full.resilience.fault.link_errors);
    EXPECT_EQ(resumed.resilience.retry.retransmissions,
              full.resilience.retry.retransmissions);
    EXPECT_EQ(resumed.raw_trace, full.raw_trace);
    EXPECT_TRUE(resumed.exec.restored);
    EXPECT_EQ(resumed.exec.restored_from, snap);
    EXPECT_GT(resumed.exec.restore_cycle, 0u);
  }
}

TEST(Checkpoint, RoundTripOnOpenPageBackends) {
  // HBM/DDR bank state (open rows, RAS horizons) persists across quiescent
  // points and changes future hit/miss outcomes; the round-trip must carry
  // it exactly.
  for (BackendKind backend : {BackendKind::kHbm, BackendKind::kDdr}) {
    SCOPED_TRACE(std::string(to_string(backend)));
    const std::string dir =
        fresh_dir(std::string("pacsim_ckpt_") +
                  std::string(to_string(backend)));
    SystemConfig cfg = checkpoint_config(backend);
    const std::vector<Trace> traces = make_traces(0xB0B, cfg.num_cores, 700);
    cfg.exec.checkpoint_dir = dir;
    const RunResult full = simulate(cfg, traces);
    const std::vector<std::string> snaps = snapshots_in(dir);
    ASSERT_GE(snaps.size(), 1u);

    SystemConfig rcfg = cfg;
    rcfg.exec.checkpoint_dir.clear();
    rcfg.exec.restore_path = snaps[snaps.size() / 2];
    const RunResult resumed = simulate(rcfg, traces);
    EXPECT_EQ(run_report_json("d", cfg.coalescer, resumed,
                              /*include_throughput=*/false),
              run_report_json("d", cfg.coalescer, full,
                              /*include_throughput=*/false));
    EXPECT_EQ(resumed.hmc.row_hits, full.hmc.row_hits);
    EXPECT_EQ(resumed.hmc.row_misses, full.hmc.row_misses);
  }
}

TEST(Checkpoint, CheckpointEveryThinsTheGrid) {
  const std::string dir1 = fresh_dir("pacsim_ckpt_every_epoch");
  const std::string dir2 = fresh_dir("pacsim_ckpt_every_16k");
  SystemConfig cfg = checkpoint_config();
  const std::vector<Trace> traces = make_traces(0xACE, cfg.num_cores, 900);

  cfg.exec.checkpoint_dir = dir1;
  const RunResult dense = simulate(cfg, traces);
  cfg.exec.checkpoint_dir = dir2;
  cfg.exec.checkpoint_every = 16 * 2048;
  const RunResult sparse = simulate(cfg, traces);

  EXPECT_LT(sparse.exec.checkpoints_written, dense.exec.checkpoints_written);
  // Cadence is host-side policy: simulated results are unaffected.
  EXPECT_EQ(run_report_json("d", cfg.coalescer, sparse,
                            /*include_throughput=*/false),
            run_report_json("d", cfg.coalescer, dense,
                            /*include_throughput=*/false));
}

TEST(Checkpoint, RestoreRejectsWrongTraces) {
  const std::string dir = fresh_dir("pacsim_ckpt_wrongtrace");
  SystemConfig cfg = checkpoint_config();
  const std::vector<Trace> traces = make_traces(0xACE, cfg.num_cores, 900);
  cfg.exec.checkpoint_dir = dir;
  (void)simulate(cfg, traces);
  const std::vector<std::string> snaps = snapshots_in(dir);
  ASSERT_GE(snaps.size(), 1u);

  SystemConfig rcfg = cfg;
  rcfg.exec.checkpoint_dir.clear();
  rcfg.exec.restore_path = snaps.front();
  // Different workload: the header fingerprint must reject the restore
  // instead of silently diverging.
  const std::vector<Trace> other = make_traces(0xBEE, cfg.num_cores, 900);
  EXPECT_THROW(simulate(rcfg, other), SnapshotError);
}

TEST(Checkpoint, RestoreRejectsWrongShardCountAndGarbage) {
  const std::string dir = fresh_dir("pacsim_ckpt_badheader");
  SystemConfig cfg = checkpoint_config();
  const std::vector<Trace> traces = make_traces(0xACE, cfg.num_cores, 900);
  cfg.exec.checkpoint_dir = dir;
  (void)simulate(cfg, traces);
  const std::vector<std::string> snaps = snapshots_in(dir);
  ASSERT_GE(snaps.size(), 1u);

  SystemConfig rcfg = cfg;
  rcfg.exec.checkpoint_dir.clear();
  rcfg.exec.restore_path = snaps.front();
  rcfg.exec.shards = 4;  // snapshot was taken with 2
  EXPECT_THROW(simulate(rcfg, traces), SnapshotError);

  rcfg.exec.shards = 2;
  rcfg.exec.restore_path = dir + "/missing.pacsnap";
  EXPECT_THROW(simulate(rcfg, traces), SnapshotError);

  // Truncated snapshot: strict reader, never a half-restore.
  std::string bytes;
  {
    std::ifstream in(snaps.front(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const std::string truncated_path = dir + "/truncated.pacsnap";
  write_file_atomic(truncated_path, bytes.substr(0, bytes.size() / 2));
  rcfg.exec.restore_path = truncated_path;
  EXPECT_THROW(simulate(rcfg, traces), SnapshotError);
}

// ---------------------------------------------------------------------------
// atomic_file durability error paths.
// ---------------------------------------------------------------------------

TEST(AtomicFile, ThrowsWhenDirectoryDoesNotExist) {
  const std::string path = std::string(::testing::TempDir()) +
                           "/pacsim_no_such_dir/x/y/report.json";
  EXPECT_THROW(write_file_atomic(path, "content"), std::runtime_error);
}

TEST(AtomicFile, ThrowsWhenParentIsAFile) {
  // A regular file where the directory component should be: every stage of
  // the temp-write/rename/dir-fsync pipeline must fail cleanly (and this
  // path, unlike permission bits, also fails for root).
  const std::string parent =
      std::string(::testing::TempDir()) + "/pacsim_parent_file";
  write_file_atomic(parent, "i am a file");
  EXPECT_THROW(write_file_atomic(parent + "/child.json", "content"),
               std::runtime_error);
  std::filesystem::remove(parent);
}

TEST(AtomicFile, WriteSurvivesAndReplacesAtomically) {
  const std::string dir = fresh_dir("pacsim_atomic_ok");
  // write_file_atomic deliberately does NOT create directories (that is the
  // ThrowsWhenDirectoryDoesNotExist contract); set one up for it.
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/f.bin";
  write_file_atomic(path, "first");
  write_file_atomic(path, std::string("\x00\x01second", 8));
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, std::string("\x00\x01second", 8));
  // No stray temp files left behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

}  // namespace
}  // namespace pacsim
