// Sparse-solver scenario: an HPCG-style conjugate-gradient workload on the
// PAC memory stack, sweeping the stage-1 timeout to show the aggregation
// window / latency trade-off the paper discusses in section 5.3.4.
//
//   ./sparse_solver [ops=120000] [suite=hpcg]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

using namespace pacsim;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  WorkloadConfig wcfg;
  wcfg.max_ops_per_core = cli.get_u64("ops", 120'000);
  const std::string name = cli.get("suite", "hpcg");
  const Workload* suite = find_workload(name);
  if (suite == nullptr) {
    std::printf("unknown suite '%s'\n", name.c_str());
    return 1;
  }

  const std::vector<Trace> traces = suite->generate(wcfg);

  // Baseline without coalescing.
  SystemConfig base;
  base.coalescer = CoalescerKind::kDirect;
  const RunResult none = simulate(base, traces);

  Table t({"timeout (cyc)", "coal.eff", "bank-conflict red.", "energy red.",
           "speedup vs none"});
  for (std::uint32_t timeout : {4u, 8u, 16u, 32u, 64u}) {
    SystemConfig cfg;
    cfg.coalescer = CoalescerKind::kPac;
    cfg.pac.timeout = timeout;
    const RunResult r = simulate(cfg, traces);
    t.add_row({std::to_string(timeout),
               Table::pct(r.coalescing_efficiency() * 100.0),
               Table::pct(percent_reduction(
                   static_cast<double>(none.hmc.bank_conflicts),
                   static_cast<double>(r.hmc.bank_conflicts))),
               Table::pct(percent_reduction(none.total_energy,
                                            r.total_energy)),
               Table::pct(percent_improvement(
                   static_cast<double>(none.cycles),
                   static_cast<double>(r.cycles)))});
  }
  t.print("sparse solver (" + name + "): PAC timeout sweep");
  std::printf(
      "The paper pins the timeout at 16 cycles: long enough to gather\n"
      "adjacent misses, short enough to hide within the ~93 ns HMC access.\n");
  return 0;
}
