// Writing your own workload: implement the Workload interface (or just
// record traces directly) and run it through the full system. The kernel
// here is a pointer-chasing hash-join probe - a pattern not in the paper's
// suites - with a configurable match locality.
//
//   ./custom_workload [ops=100000] [locality=0.7]
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "workloads/kernel_support.hpp"

using namespace pacsim;

namespace {

/// Hash-join probe: stream the probe relation, hash each key, walk a short
/// bucket chain. `locality` is the fraction of probes that hit a "hot"
/// page-clustered region of the hash table.
class HashJoinWorkload final : public Workload {
 public:
  explicit HashJoinWorkload(double locality) : locality_(locality) {}

  std::string_view name() const override { return "hashjoin"; }
  std::string_view description() const override {
    return "hash-join probe with tunable page locality";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t probe_rows = scaled(1 << 20, cfg.scale, 1 << 12);
    const std::uint64_t buckets = 1 << 18;
    VirtualArena arena;
    const Addr probe = arena.alloc(probe_rows * 16);   // (key, payload)
    const Addr table = arena.alloc(buckets * 32);      // bucket heads
    const Addr hot = arena.alloc(64 * kPageSize);      // hot region
    const Addr out = arena.alloc(probe_rows * 8);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      Rng rng(cfg.seed ^ 0x70A5ULL ^ core);
      const Range rows = core_partition(probe_rows, core, cfg.num_cores);
      for (;;) {
        for (std::uint64_t i = rows.begin; i < rows.end; ++i) {
          rec.load(probe + i * 16);  // sequential probe stream
          rec.compute(2);            // hash
          if (rng.uniform() < locality_) {
            // Hot probe: lands in the page-clustered region.
            const std::uint64_t page = rng.below(64);
            const std::uint64_t slot = rng.below(kPageSize / 32);
            rec.load(hot + page * kPageSize + slot * 32);
          } else {
            rec.load(table + rng.below(buckets) * 32);  // cold scatter
          }
          rec.compute(1);
          rec.store(out + i * 8);  // sequential result
        }
      }
    });
  }

 private:
  double locality_;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  WorkloadConfig wcfg;
  wcfg.max_ops_per_core = cli.get_u64("ops", 100'000);

  Table t({"locality", "coalescer", "coal.eff", "txn.eff",
           "speedup vs none"});
  for (double locality : {0.2, cli.get_double("locality", 0.7), 0.95}) {
    const HashJoinWorkload suite(locality);
    const std::vector<Trace> traces = suite.generate(wcfg);
    SystemConfig base;
    base.coalescer = CoalescerKind::kDirect;
    const RunResult none = simulate(base, traces);
    for (CoalescerKind kind :
         {CoalescerKind::kMshrDmc, CoalescerKind::kPac}) {
      SystemConfig cfg;
      cfg.coalescer = kind;
      const RunResult r = simulate(cfg, traces);
      t.add_row({Table::num(locality, 2), std::string(to_string(kind)),
                 Table::pct(r.coalescing_efficiency() * 100.0),
                 Table::pct(r.transaction_eff() * 100.0),
                 Table::pct(percent_improvement(
                     static_cast<double>(none.cycles),
                     static_cast<double>(r.cycles)))});
    }
  }
  t.print("custom workload: hash-join probe locality sweep");
  std::printf(
      "PAC's advantage grows with page locality - the knob this kernel\n"
      "exposes. Use it to predict whether your application benefits.\n");
  return 0;
}
