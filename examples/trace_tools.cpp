// Trace utilities: export any built-in suite's traces to a portable binary
// file, re-import them, and characterize their footprint - the workflow for
// plugging externally collected traces (e.g. from a real Spike run) into
// the simulated memory stack.
//
//   ./trace_tools export suite=gs file=/tmp/gs.trc [ops=50000]
//   ./trace_tools inspect file=/tmp/gs.trc
//   ./trace_tools run file=/tmp/gs.trc            # simulate under PAC
//   ./trace_tools demo                            # export+inspect+run
#include <cstdio>

#include "analysis/footprint.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/trace_io.hpp"
#include "sim/runner.hpp"

using namespace pacsim;

namespace {

int do_export(const Cli& cli, const std::string& file) {
  const std::string name = cli.get("suite", "gs");
  const Workload* suite = find_workload(name);
  if (suite == nullptr) {
    std::printf("unknown suite '%s'\n", name.c_str());
    return 1;
  }
  WorkloadConfig wcfg;
  wcfg.max_ops_per_core = cli.get_u64("ops", 50'000);
  const std::vector<Trace> traces = suite->generate(wcfg);
  save_traces(file, traces);
  std::uint64_t ops = 0;
  for (const Trace& t : traces) ops += t.size();
  std::printf("exported %zu cores, %llu ops -> %s\n", traces.size(),
              static_cast<unsigned long long>(ops), file.c_str());
  return 0;
}

int do_inspect(const std::string& file) {
  const std::vector<Trace> traces = load_traces(file);
  Table t({"core", "ops", "loads", "stores", "atomics", "fences",
           "compute cyc"});
  std::vector<Addr> addresses;
  for (std::size_t c = 0; c < traces.size(); ++c) {
    std::uint64_t loads = 0, stores = 0, atomics = 0, fences = 0, comp = 0;
    for (const TraceOp& op : traces[c]) {
      switch (op.kind) {
        case OpKind::kLoad: ++loads; addresses.push_back(op.vaddr); break;
        case OpKind::kStore: ++stores; addresses.push_back(op.vaddr); break;
        case OpKind::kAtomic: ++atomics; break;
        case OpKind::kFence: ++fences; break;
        case OpKind::kCompute: comp += op.arg; break;
      }
    }
    t.add_row({std::to_string(c), std::to_string(traces[c].size()),
               std::to_string(loads), std::to_string(stores),
               std::to_string(atomics), std::to_string(fences),
               std::to_string(comp)});
  }
  t.print("trace contents: " + file);

  const FootprintStats s = analyze_footprint(addresses);
  std::printf(
      "footprint: %llu accesses over %llu pages (%.1f rq/page), in-page "
      "adjacent %.2f%%, cross-page %.4f%%\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.distinct_pages),
      s.requests_per_page.mean(), s.in_page_fraction() * 100.0,
      s.cross_page_fraction() * 100.0);
  return 0;
}

int do_run(const std::string& file) {
  const std::vector<Trace> traces = load_traces(file);
  Table t({"coalescer", "coal.eff", "txn.eff", "cycles"});
  for (CoalescerKind kind : {CoalescerKind::kDirect, CoalescerKind::kPac}) {
    SystemConfig cfg;
    cfg.coalescer = kind;
    cfg.num_cores = static_cast<std::uint32_t>(
        traces.empty() ? 1 : traces.size());
    const RunResult r = simulate(cfg, traces);
    t.add_row({std::string(to_string(kind)),
               Table::pct(r.coalescing_efficiency() * 100.0),
               Table::pct(r.transaction_eff() * 100.0),
               std::to_string(r.cycles)});
  }
  t.print("replayed trace file: " + file);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string file = cli.get("file", "/tmp/pacsim_demo.trc");
  if (cli.has("export")) return do_export(cli, file);
  if (cli.has("inspect")) return do_inspect(file);
  if (cli.has("run")) return do_run(file);
  // Demo: full round trip.
  if (int rc = do_export(cli, file); rc != 0) return rc;
  if (int rc = do_inspect(file); rc != 0) return rc;
  return do_run(file);
}
