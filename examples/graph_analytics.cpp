// Graph analytics scenario: run BFS and SSCA#2 under every coalescer and
// inspect the spatial structure of their request streams with DBSCAN -
// the workflow behind the paper's Figs. 8-9 analysis.
//
//   ./graph_analytics [ops=120000] [scale=1.0]
#include <cstdio>

#include "analysis/dbscan.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

using namespace pacsim;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  WorkloadConfig wcfg;
  wcfg.max_ops_per_core = cli.get_u64("ops", 120'000);
  wcfg.scale = cli.get_double("scale", 1.0);

  Table t({"suite", "coalescer", "coal.eff", "bank conflicts", "runtime (us)",
           "clusters", "clustered"});

  for (const char* name : {"bfs", "sscav2"}) {
    const Workload* suite = find_workload(name);
    const std::vector<Trace> traces = suite->generate(wcfg);
    for (CoalescerKind kind : {CoalescerKind::kDirect, CoalescerKind::kPac}) {
      SystemConfig cfg;
      cfg.coalescer = kind;
      cfg.num_cores = wcfg.num_cores;
      cfg.record_raw_trace = true;
      cfg.raw_trace_start = 20'000;
      cfg.raw_trace_limit = 8'000;
      const RunResult r = simulate(cfg, traces);

      DbscanConfig db;  // epsilon = one page, as in the paper
      const DbscanResult clusters = dbscan_addresses(r.raw_trace, db);

      t.add_row({name, std::string(to_string(kind)),
                 Table::pct(r.coalescing_efficiency() * 100.0),
                 std::to_string(r.hmc.bank_conflicts),
                 Table::num(r.runtime_ns() / 1000.0),
                 std::to_string(clusters.num_clusters()),
                 Table::pct(clusters.clustered_fraction() * 100.0)});
    }
  }
  t.print("graph analytics: BFS & SSCA#2 under PAC");
  std::printf(
      "Note: BFS's scattered footprint (few dense clusters) is why paged\n"
      "coalescing gains little there, exactly as the paper observes.\n");
  return 0;
}
