// End-to-end "Spike-like" flow: RV64 assembly kernels are assembled,
// executed on the RV64IMA interpreter (one hart per simulated core), and
// the recorded traces drive the full cache + PAC + HMC stack - exactly the
// paper's methodology, with our interpreter standing in for Spike.
//
//   ./riscv_frontend [ops=120000] [cores=8]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "riscv/riscv_workload.hpp"
#include "sim/runner.hpp"

using namespace pacsim;

namespace {

// STREAM-triad over a 4 MB slice per core: a[i] = b[i] + s * c[i].
constexpr const char* kTriad = R"(
    # a0 = core id, a1 = core count
    li   t0, 0x10000000      # a base
    li   t1, 0x14000000      # b base
    li   t2, 0x18000000      # c base
    li   t3, 65536           # doubles per core
    mul  t4, a0, t3
    slli t4, t4, 3           # byte offset of this core's slice
    add  t0, t0, t4
    add  t1, t1, t4
    add  t2, t2, t4
    li   t5, 0               # i
    li   t6, 3               # scalar s
triad_loop:
    ld   a2, 0(t1)           # b[i]
    ld   a3, 0(t2)           # c[i]
    mul  a3, a3, t6
    add  a2, a2, a3
    sd   a2, 0(t0)           # a[i]
    addi t0, t0, 8
    addi t1, t1, 8
    addi t2, t2, 8
    addi t5, t5, 1
    blt  t5, t3, triad_loop
    ecall
)";

// Page-clustered gather: bursts of 32 consecutive doubles at
// pseudo-random page bases of a 64 MB table (the GS pattern), plus a
// final atomic accumulate - exercising PAC's atomic bypass.
constexpr const char* kGather = R"(
    # a0 = core id, a1 = core count
    li   s0, 0x20000000      # table base (64 MB)
    li   s1, 0x40000000      # per-core output base
    li   t0, 4096
    mul  t1, a0, t0
    slli t1, t1, 3
    add  s1, s1, t1          # out slice
    li   s2, 0               # burst counter
    li   s3, 128             # bursts per core
    # xorshift seed differs per core
    addi s4, a0, 99
gather_burst:
    # s4 = xorshift64 step
    slli t2, s4, 13
    xor  s4, s4, t2
    srli t2, s4, 7
    xor  s4, s4, t2
    slli t2, s4, 17
    xor  s4, s4, t2
    # pick page: (s4 mod 16384) * 4096
    li   t3, 16383
    and  t2, s4, t3
    slli t2, t2, 12
    add  t2, t2, s0          # burst base (page-aligned)
    li   t4, 0               # element in burst
    li   t5, 32
burst_loop:
    ld   a2, 0(t2)
    sd   a2, 0(s1)
    addi t2, t2, 8
    addi s1, s1, 8
    addi t4, t4, 1
    blt  t4, t5, burst_loop
    addi s2, s2, 1
    blt  s2, s3, gather_burst
    # atomic accumulate into a shared counter
    li   t6, 0x50000000
    amoadd.d a2, s2, (t6)
    ecall
)";

void run_kernel(const char* name, const char* desc, const char* source,
                const WorkloadConfig& wcfg) {
  rv::RiscvProgramWorkload workload(name, desc, source);
  const std::vector<Trace> traces = workload.generate(wcfg);

  std::uint64_t ops = 0;
  for (const Trace& t : traces) ops += t.size();
  std::printf("[%s] %zu harts, %llu trace ops, halt=%d\n", name,
              traces.size(), static_cast<unsigned long long>(ops),
              static_cast<int>(workload.last_halt()));

  Table t({"coalescer", "coal.eff", "txn.eff", "bank conflicts", "cycles"});
  for (CoalescerKind kind : {CoalescerKind::kDirect, CoalescerKind::kMshrDmc,
                             CoalescerKind::kPac}) {
    SystemConfig cfg;
    cfg.coalescer = kind;
    cfg.num_cores = wcfg.num_cores;
    const RunResult r = simulate(cfg, traces);
    t.add_row({std::string(to_string(kind)),
               Table::pct(r.coalescing_efficiency() * 100.0),
               Table::pct(r.transaction_eff() * 100.0),
               std::to_string(r.hmc.bank_conflicts),
               std::to_string(r.cycles)});
  }
  t.print(std::string("riscv frontend: ") + name);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  WorkloadConfig wcfg;
  wcfg.num_cores = static_cast<std::uint32_t>(cli.get_u64("cores", 8));
  wcfg.max_ops_per_core = cli.get_u64("ops", 120'000);
  wcfg.compute_scale = 1.0;  // the interpreter supplies real instructions

  run_kernel("rv-triad", "STREAM triad in RV64 assembly", kTriad, wcfg);
  run_kernel("rv-gather", "page-clustered gather in RV64 assembly", kGather,
             wcfg);
  return 0;
}
