// Protocol portability demo (paper section 4.1): the same PAC pipeline
// retargeted from HMC 1.0 (128 B) to HMC 2.1 (256 B) to HBM (1 KB rows) by
// swapping only the CoalescingProtocol descriptor - no coalescing-logic
// changes. Drives a PAC instance directly through its public API.
//
//   ./hbm_port [pages=64] [burst=16]
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "mem/packet.hpp"
#include "pac/pac.hpp"

using namespace pacsim;

namespace {

struct Standalone {
  PowerModel power;
  HmcDevice device;
  DevicePort port;
  Pac pac;
  Cycle now = 0;
  std::uint64_t next_id = 1;
  std::uint64_t satisfied = 0;

  Standalone(const PacConfig& cfg, const HmcConfig& hmc)
      : device(hmc, &power),
        port(&device, RetryConfig{}, /*tracking=*/false),
        pac(cfg, &port) {}

  void tick() {
    device.tick(now);
    for (const DeviceResponse& rsp : device.drain_completed()) {
      pac.complete(rsp, now);
    }
    pac.tick(now);
    satisfied += pac.drain_satisfied().size();
    ++now;
  }

  void feed(Addr paddr, bool store) {
    MemRequest r;
    r.id = next_id++;
    r.paddr = paddr;
    r.bytes = 64;
    r.op = store ? MemOp::kStore : MemOp::kLoad;
    while (!pac.accept(r, now)) tick();
  }

  void drain() {
    while (!(pac.idle() && device.idle())) tick();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::uint64_t pages = cli.get_u64("pages", 64);
  const std::uint64_t burst = cli.get_u64("burst", 16);

  Table t({"protocol", "max request", "issued", "avg request (B)",
           "txn efficiency", "satisfied raws"});

  for (const CoalescingProtocol& protocol :
       {CoalescingProtocol::hmc1(), CoalescingProtocol::hmc2(),
        CoalescingProtocol::hbm()}) {
    PacConfig cfg;
    cfg.protocol = protocol;
    cfg.enable_bypass_controller = false;
    HmcConfig hmc;
    if (protocol.max_request > 256) hmc.map.row_bytes = 1024;  // HBM rows

    Standalone sys(cfg, hmc);
    // Identical input stream for every protocol: bursts of `burst`
    // consecutive cache lines at random page bases.
    Rng rng(1);
    for (std::uint64_t p = 0; p < pages; ++p) {
      const Addr page = (0x100 + rng.below(1 << 20)) << kPageShift;
      const std::uint64_t start = rng.below(64 - burst);
      for (std::uint64_t b = 0; b < burst; ++b) {
        sys.feed(page + (start + b) * 64, false);
      }
      sys.tick();
    }
    sys.drain();

    const CoalescerStats& s = sys.pac.stats();
    t.add_row({std::string(protocol.name),
               std::to_string(protocol.max_request) + "B",
               std::to_string(s.issued_requests),
               Table::num(s.issued_requests == 0
                              ? 0.0
                              : static_cast<double>(s.issued_payload_bytes) /
                                    static_cast<double>(s.issued_requests)),
               Table::pct(transaction_efficiency(s.issued_payload_bytes,
                                                 s.issued_requests) *
                          100.0),
               std::to_string(sys.satisfied)});
  }
  t.print("protocol portability: one pipeline, three devices");
  return 0;
}
