// Protocol + substrate portability demo (paper section 4.1): the same PAC
// pipeline retargeted from HMC 1.0 (128 B) to HMC 2.1 (256 B) to a real
// HBM backend (1 KB rows, 32 B granules) by swapping the CoalescingProtocol
// descriptor and the MemoryBackend underneath it - no coalescing-logic
// changes. The HBM row runs on the actual open-page HbmDevice model, not an
// HMC cube relabelled with 1 KB rows. Drives a PAC instance directly
// through its public API, using the non-allocating drain_*_into calls the
// full System uses (the steady-state loop allocates nothing).
//
//   ./hbm_port [pages=64] [burst=16]
#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "hmc/backend_factory.hpp"
#include "hmc/power_model.hpp"
#include "mem/packet.hpp"
#include "pac/pac.hpp"

using namespace pacsim;

namespace {

struct Standalone {
  PowerModel power;
  std::unique_ptr<MemoryBackend> device;
  DevicePort port;
  Pac pac;
  Cycle now = 0;
  std::uint64_t next_id = 1;
  std::uint64_t satisfied = 0;
  // Reused drain buffers: cleared and refilled in place each cycle.
  std::vector<DeviceResponse> completed;
  std::vector<std::uint64_t> satisfied_ids;

  Standalone(const PacConfig& cfg, BackendKind backend, const HmcConfig& hmc,
             const HbmConfig& hbm)
      : device(make_backend(backend, hmc, hbm, DdrConfig{}, &power)),
        port(device.get(), RetryConfig{}, /*tracking=*/false),
        pac(cfg, &port) {}

  void tick() {
    device->tick(now);
    device->drain_completed_into(completed);
    for (const DeviceResponse& rsp : completed) pac.complete(rsp, now);
    pac.tick(now);
    pac.drain_satisfied_into(satisfied_ids);
    satisfied += satisfied_ids.size();
    ++now;
  }

  void feed(Addr paddr, bool store) {
    MemRequest r;
    r.id = next_id++;
    r.paddr = paddr;
    r.bytes = 64;
    r.op = store ? MemOp::kStore : MemOp::kLoad;
    while (!pac.accept(r, now)) tick();
  }

  void drain() {
    while (!(pac.idle() && device->idle())) tick();
  }
};

struct Target {
  CoalescingProtocol protocol;
  BackendKind backend;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::uint64_t pages = cli.get_u64("pages", 64);
  const std::uint64_t burst = cli.get_u64("burst", 16);

  Table t({"protocol", "backend", "max request", "issued", "avg request (B)",
           "txn efficiency", "satisfied raws"});

  const Target targets[] = {
      {CoalescingProtocol::hmc1(), BackendKind::kHmc},
      {CoalescingProtocol::hmc2(), BackendKind::kHmc},
      {CoalescingProtocol::hbm(), BackendKind::kHbm},
  };
  for (const Target& target : targets) {
    PacConfig cfg;
    cfg.protocol = target.protocol;
    cfg.enable_bypass_controller = false;

    Standalone sys(cfg, target.backend, HmcConfig{}, HbmConfig{});
    // Identical input stream for every protocol: bursts of `burst`
    // consecutive cache lines at random page bases.
    Rng rng(1);
    for (std::uint64_t p = 0; p < pages; ++p) {
      const Addr page = (0x100 + rng.below(1 << 20)) << kPageShift;
      const std::uint64_t start = rng.below(64 - burst);
      for (std::uint64_t b = 0; b < burst; ++b) {
        sys.feed(page + (start + b) * 64, false);
      }
      sys.tick();
    }
    sys.drain();

    const CoalescerStats& s = sys.pac.stats();
    t.add_row({std::string(target.protocol.name),
               std::string(to_string(target.backend)),
               std::to_string(target.protocol.max_request) + "B",
               std::to_string(s.issued_requests),
               Table::num(s.issued_requests == 0
                              ? 0.0
                              : static_cast<double>(s.issued_payload_bytes) /
                                    static_cast<double>(s.issued_requests)),
               Table::pct(transaction_efficiency(s.issued_payload_bytes,
                                                 s.issued_requests) *
                          100.0),
               std::to_string(sys.satisfied)});
  }
  t.print("protocol portability: one pipeline, three devices");
  return 0;
}
