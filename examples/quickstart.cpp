// Quickstart: run one suite under all three coalescers and print the
// headline metrics (coalescing efficiency, bank conflicts, energy, runtime).
//
//   ./quickstart [workload=stream] [scale=1.0] [ops=200000]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace pacsim;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string name = cli.get("workload", "stream");
  const Workload* suite = find_workload(name);
  if (suite == nullptr) {
    std::printf("unknown workload '%s'; available:", name.c_str());
    for (auto n : workload_names()) std::printf(" %.*s",
                                                static_cast<int>(n.size()),
                                                n.data());
    std::printf("\n");
    return 1;
  }

  WorkloadConfig wcfg;
  wcfg.scale = cli.get_double("scale", 1.0);
  wcfg.max_ops_per_core = cli.get_u64("ops", 200'000);
  wcfg.compute_scale = cli.get_double("cscale", wcfg.compute_scale);

  SystemConfig base;  // paper Table 1 defaults
  base.max_outstanding_loads =
      static_cast<std::uint32_t>(cli.get_u64("mlp", base.max_outstanding_loads));
  base.prefetch.degree =
      static_cast<std::uint32_t>(cli.get_u64("pfdegree", base.prefetch.degree));

  std::printf("suite: %s — %.*s\n", name.c_str(),
              static_cast<int>(suite->description().size()),
              suite->description().data());

  Table table({"coalescer", "coal.eff", "txn.eff", "bank conflicts",
               "energy (uJ)", "cycles", "avg HMC ns"});
  RunResult direct;
  for (CoalescerKind kind :
       {CoalescerKind::kDirect, CoalescerKind::kMshrDmc, CoalescerKind::kPac}) {
    const RunResult r = run_suite(*suite, kind, wcfg, base);
    if (kind == CoalescerKind::kDirect) direct = r;
    // report=prefix: dump a JSON report per configuration.
    if (cli.has("report")) {
      const std::string path = cli.get("report") + "." +
                               std::string(to_string(kind)) + ".json";
      write_run_report(path, name + "/" + std::string(to_string(kind)),
                       kind, r);
      std::printf("wrote %s\n", path.c_str());
    }
    table.add_row({std::string(to_string(kind)),
                   Table::pct(r.coalescing_efficiency() * 100.0),
                   Table::pct(r.transaction_eff() * 100.0),
                   std::to_string(r.hmc.bank_conflicts),
                   Table::num(r.total_energy / 1e6),
                   std::to_string(r.cycles),
                   Table::num(r.avg_hmc_latency_ns())});
    if (cli.has("verbose")) {
      std::printf("volume[%s]: raw=%llu issued=%llu payloadMB=%.2f\n",
                  to_string(kind).data(),
                  static_cast<unsigned long long>(r.coal.raw_requests),
                  static_cast<unsigned long long>(r.coal.issued_requests),
                  static_cast<double>(r.coal.issued_payload_bytes) / 1e6);
      std::printf("energy[%s] (uJ):", to_string(kind).data());
      for (std::size_t op = 0; op < r.energy.size(); ++op) {
        std::printf(" %s=%.2f", to_string(static_cast<HmcOp>(op)).data(),
                    r.energy[op] / 1e6);
      }
      std::printf("\n");
    }
    if (kind == CoalescerKind::kPac && cli.has("verbose")) {
      const PacStats& p = r.pac;
      std::printf(
          "PAC internals: raw=%llu issued=%llu c0_bypass=%llu "
          "ctrl_bypass=%llu mshr_merges=%llu flushes(t=%llu,f=%llu,full=%llu) "
          "occupancy=%.2f stage2=%.2f stage3=%.2f maq_fill=%.2f "
          "prefetches=%llu\n",
          static_cast<unsigned long long>(p.base.raw_requests),
          static_cast<unsigned long long>(p.base.issued_requests),
          static_cast<unsigned long long>(p.c0_bypass_requests),
          static_cast<unsigned long long>(p.controller_bypass_requests),
          static_cast<unsigned long long>(p.mshr_merges),
          static_cast<unsigned long long>(p.timeout_flushes),
          static_cast<unsigned long long>(p.fence_flushes),
          static_cast<unsigned long long>(p.full_chunk_flushes),
          p.stream_occupancy.mean(), p.stage2_latency.mean(),
          p.stage3_latency.mean(), p.maq_fill_latency.mean(),
          static_cast<unsigned long long>(r.prefetches_issued));
    }
    if (kind == CoalescerKind::kPac) {
      std::printf(
          "PAC vs direct: %.2f%% faster, %.2f%% fewer bank conflicts, "
          "%.2f%% less HMC energy\n",
          percent_improvement(static_cast<double>(direct.cycles),
                              static_cast<double>(r.cycles)),
          percent_reduction(static_cast<double>(direct.hmc.bank_conflicts),
                            static_cast<double>(r.hmc.bank_conflicts)),
          percent_reduction(direct.total_energy, r.total_energy));
    }
  }
  table.print("quickstart: " + name);
  return 0;
}
